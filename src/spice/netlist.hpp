// Circuit representation for the MNA (modified nodal analysis) simulator.
//
// A Netlist owns a set of Devices connected at named nodes. Ground is the
// node named "0" (alias "gnd") and is excluded from the unknown vector. The
// unknown vector x holds node voltages first, then one branch current per
// device that requires it (voltage sources, inductors, controlled sources).
//
// Devices contribute to analyses through stamp callbacks:
//   * stamp_nonlinear : linearized large-signal model (Newton companion form)
//                       used by DC and transient analyses,
//   * stamp_ac        : small-signal model at a DC operating point,
//   * linear_caps     : capacitances (fixed or evaluated at the OP) that the
//                       transient engine integrates with the trapezoidal rule,
//   * noise_sources   : equivalent noise current generators at the OP.
#pragma once

#include <complex>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "linalg/matrix.hpp"

namespace maopt::spice {

using linalg::CMat;
using linalg::CVec;
using linalg::Mat;
using linalg::Vec;

/// Index of the ground node; stamps touching it are dropped.
inline constexpr int kGround = -1;

/// Stamp helper around the real MNA matrix/RHS; ignores ground rows/columns.
/// The matrix-only form (no RHS) is used by the ω-affine AC decomposition,
/// where the G and C parts have no excitation of their own.
class RealStamper {
 public:
  RealStamper(Mat& a, Vec& rhs) : a_(a), rhs_(&rhs) {}
  explicit RealStamper(Mat& a) : a_(a), rhs_(nullptr) {}

  void add(int i, int j, double v) {
    if (i == kGround || j == kGround) return;
    a_(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) += v;
  }
  /// Two-terminal conductance g between nodes a and b.
  void conductance(int a, int b, double g) {
    add(a, a, g);
    add(b, b, g);
    add(a, b, -g);
    add(b, a, -g);
  }
  /// Current `i` flowing INTO node (adds to the RHS of that node's KCL row).
  void current_into(int node, double i) {
    if (node == kGround || rhs_ == nullptr) return;
    (*rhs_)[static_cast<std::size_t>(node)] += i;
  }
  void rhs_add(int row, double v) {
    if (row == kGround || rhs_ == nullptr) return;
    (*rhs_)[static_cast<std::size_t>(row)] += v;
  }

 private:
  Mat& a_;
  Vec* rhs_;
};

/// Complex counterpart for AC/noise analyses.
class ComplexStamper {
 public:
  ComplexStamper(CMat& a, CVec& rhs) : a_(a), rhs_(rhs) {}

  void add(int i, int j, std::complex<double> v) {
    if (i == kGround || j == kGround) return;
    a_(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) += v;
  }
  void conductance(int a, int b, std::complex<double> g) {
    add(a, a, g);
    add(b, b, g);
    add(a, b, -g);
    add(b, a, -g);
  }
  void current_into(int node, std::complex<double> i) {
    if (node == kGround) return;
    rhs_[static_cast<std::size_t>(node)] += i;
  }
  void rhs_add(int row, std::complex<double> v) {
    if (row == kGround) return;
    rhs_[static_cast<std::size_t>(row)] += v;
  }

 private:
  CMat& a_;
  CVec& rhs_;
};

/// Context for large-signal stamping.
struct NonlinearStampArgs {
  const Vec& x;            ///< current Newton iterate (node voltages + branch currents)
  double source_scale;     ///< independent sources scaled by this (source stepping)
  double time;             ///< < 0: DC analysis (use DC values); >= 0: transient time
};

/// A linear(ized) capacitance between two nodes, integrated by the transient engine.
struct CapacitorStamp {
  int node_a;
  int node_b;
  double capacitance;
};

/// Equivalent noise current generator between two nodes.
/// PSD(f) = white + flicker / f   [A^2/Hz]
struct NoiseSource {
  int node_a;
  int node_b;
  double white;
  double flicker;
  std::string label;
  double psd(double freq) const { return white + (flicker > 0.0 ? flicker / freq : 0.0); }
};

class Device {
 public:
  virtual ~Device() = default;

  /// Number of extra branch-current unknowns this device needs.
  virtual int num_branches() const { return 0; }
  /// Called once by Netlist::prepare() with this device's first branch index.
  void set_branch_base(int base) { branch_base_ = base; }
  int branch_base() const { return branch_base_; }

  virtual void stamp_nonlinear(RealStamper& s, const NonlinearStampArgs& args) const = 0;
  virtual void stamp_ac(ComplexStamper& s, double omega, const Vec& op) const = 0;
  /// ω-affine decomposition of stamp_ac: the full small-signal system is
  /// A(ω) = G + jωC with an ω-independent excitation, so devices stamp their
  /// conductive part into `g`, their capacitive/inductive part into `c`
  /// (scaled by ω at combine time), and their excitation into `rhs`. Every
  /// in-tree stamp_ac is exactly ω-affine; the pure virtual keeps new
  /// devices honest (a silently missing part would corrupt every AC sweep).
  virtual void stamp_ac_parts(RealStamper& g, RealStamper& c, CVec& rhs, const Vec& op) const = 0;
  /// Excitation-only restamp: adds exactly the `rhs` contribution that
  /// stamp_ac_parts would add, nothing else. Lets callers capture several
  /// excitations (set magnitudes, re-collect rhs) against one G/C assembly;
  /// only independent sources carry an AC excitation, so the default is a
  /// no-op.
  virtual void stamp_ac_rhs(CVec& rhs) const { (void)rhs; }
  virtual void collect_caps(std::vector<CapacitorStamp>& caps, const Vec& op) const {
    (void)caps;
    (void)op;
  }
  virtual void collect_noise(std::vector<NoiseSource>& sources, const Vec& op) const {
    (void)sources;
    (void)op;
  }
  /// Appends every time-varying input this device feeds into stamp_nonlinear
  /// at the given time (waveform values of independent sources / loads).
  /// Together with the iterate and the companion state these values fully
  /// determine the assembled system of a transient step, so the transient
  /// engine uses them as part of its step-memo key. Devices without
  /// time-dependence append nothing.
  virtual void collect_time_inputs(double time, Vec& out) const {
    (void)time;
    (void)out;
  }

 private:
  int branch_base_ = -1;
};

class Netlist {
 public:
  /// Returns the index of a named node, creating it on first use.
  /// "0" and "gnd" map to kGround.
  int node(const std::string& name);
  /// Looks up an existing node; throws if unknown.
  int find_node(const std::string& name) const;

  /// Adds a device; the netlist takes ownership. Returns a handle for later
  /// parameter updates (e.g. sweeping a source value).
  template <typename T, typename... Args>
  T* add(Args&&... args) {
    auto dev = std::make_unique<T>(std::forward<Args>(args)...);
    T* ptr = dev.get();
    devices_.push_back(std::move(dev));
    prepared_ = false;
    return ptr;
  }

  /// Assigns branch indices; must be called (or is called lazily) before analyses.
  void prepare();
  bool prepared() const { return prepared_; }

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t system_size() const { return system_size_; }
  const std::vector<std::unique_ptr<Device>>& devices() const { return devices_; }

  /// Optional human-readable device labels (set by the parser, used by
  /// diagnostic reports). Unknown devices map to "".
  void set_label(const Device* device, std::string label);
  const std::string& label(const Device* device) const;
  /// Reverse node lookup for reports ("" for unnamed / ground).
  std::string node_name(int node) const;

  /// Builds the linearized system A x_next = rhs at iterate x.
  void build_nonlinear_system(const Vec& x, double source_scale, double time, double gmin,
                              Mat& a, Vec& rhs) const;
  /// Builds the complex small-signal system at angular frequency omega.
  /// One-shot reference path; the sweep hot path uses build_ac_parts().
  void build_ac_system(double omega, const Vec& op, CMat& a, CVec& rhs) const;
  /// Stamps the ω-independent parts of the small-signal system once:
  /// A(ω) = g + jω·c with excitation `rhs`. An AC/noise sweep assembles
  /// these a single time and combines per frequency.
  void build_ac_parts(const Vec& op, Mat& g, Mat& c, CVec& rhs) const;

  /// Rebuilds only the AC excitation vector (the `rhs` that build_ac_parts
  /// fills), picking up source magnitudes changed since the last assembly.
  /// G and C do not depend on AC magnitudes, so pairing one build_ac_parts
  /// with several build_ac_rhs captures a set of excitations for
  /// AcAnalysis::run_multi.
  void build_ac_rhs(CVec& rhs) const;

  std::vector<CapacitorStamp> collect_caps(const Vec& op) const;
  std::vector<NoiseSource> collect_noise(const Vec& op) const;

  /// Collects every device's time-varying stamp inputs at `time` into `out`
  /// (cleared first). See Device::collect_time_inputs.
  void collect_time_inputs(double time, Vec& out) const;

  /// Voltage of node index `n` in solution vector `x` (0 for ground).
  static double voltage(const Vec& x, int n) {
    return n == kGround ? 0.0 : x[static_cast<std::size_t>(n)];
  }
  static std::complex<double> voltage(const CVec& x, int n) {
    return n == kGround ? std::complex<double>{} : x[static_cast<std::size_t>(n)];
  }

 private:
  std::unordered_map<std::string, int> node_ids_;
  std::unordered_map<const Device*, std::string> labels_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::size_t num_nodes_ = 0;
  std::size_t system_size_ = 0;
  bool prepared_ = false;
};

}  // namespace maopt::spice
