// Passive devices and independent / controlled sources.
#pragma once

#include <utility>
#include <vector>

#include "spice/netlist.hpp"

namespace maopt::spice {

/// Time-domain source waveform: DC, piecewise-linear, or pulse.
class Waveform {
 public:
  static Waveform dc(double value);
  /// Points must be sorted by time; value is held constant outside the range.
  static Waveform pwl(std::vector<std::pair<double, double>> points);
  static Waveform pulse(double v1, double v2, double delay, double rise, double fall,
                        double width, double period);

  double value(double t) const;
  double dc_value() const { return value(0.0); }

 private:
  enum class Kind { Dc, Pwl, Pulse };
  Kind kind_ = Kind::Dc;
  double dc_ = 0.0;
  std::vector<std::pair<double, double>> points_;
  double v1_ = 0, v2_ = 0, delay_ = 0, rise_ = 0, fall_ = 0, width_ = 0, period_ = 0;
};

class Resistor final : public Device {
 public:
  Resistor(int a, int b, double ohms);
  void stamp_nonlinear(RealStamper& s, const NonlinearStampArgs& args) const override;
  void stamp_ac(ComplexStamper& s, double omega, const Vec& op) const override;
  void stamp_ac_parts(RealStamper& g, RealStamper& c, CVec& rhs, const Vec& op) const override;
  void collect_noise(std::vector<NoiseSource>& sources, const Vec& op) const override;

  void set_resistance(double ohms);
  double resistance() const { return ohms_; }
  int node_a() const { return a_; }
  int node_b() const { return b_; }

 private:
  int a_, b_;
  double ohms_;
};

class Capacitor final : public Device {
 public:
  Capacitor(int a, int b, double farads);
  /// Open circuit at DC.
  void stamp_nonlinear(RealStamper& s, const NonlinearStampArgs& args) const override;
  void stamp_ac(ComplexStamper& s, double omega, const Vec& op) const override;
  void stamp_ac_parts(RealStamper& g, RealStamper& c, CVec& rhs, const Vec& op) const override;
  void collect_caps(std::vector<CapacitorStamp>& caps, const Vec& op) const override;

  void set_capacitance(double farads) { farads_ = farads; }
  double capacitance() const { return farads_; }

 private:
  int a_, b_;
  double farads_;
};

/// Supported in DC (short) and AC; the transient engine rejects netlists
/// containing inductors (none of the shipped testbenches use them).
class Inductor final : public Device {
 public:
  Inductor(int a, int b, double henries);
  int num_branches() const override { return 1; }
  void stamp_nonlinear(RealStamper& s, const NonlinearStampArgs& args) const override;
  void stamp_ac(ComplexStamper& s, double omega, const Vec& op) const override;
  void stamp_ac_parts(RealStamper& g, RealStamper& c, CVec& rhs, const Vec& op) const override;

  double inductance() const { return henries_; }

 private:
  int a_, b_;
  double henries_;
};

/// Independent voltage source (positive terminal `a`). The branch current
/// unknown is the current flowing from `a` through the source to `b`.
class VSource final : public Device {
 public:
  VSource(int a, int b, Waveform waveform, double ac_mag = 0.0);
  int num_branches() const override { return 1; }
  void stamp_nonlinear(RealStamper& s, const NonlinearStampArgs& args) const override;
  void stamp_ac(ComplexStamper& s, double omega, const Vec& op) const override;
  void stamp_ac_parts(RealStamper& g, RealStamper& c, CVec& rhs, const Vec& op) const override;
  void stamp_ac_rhs(CVec& rhs) const override;
  void collect_time_inputs(double time, Vec& out) const override;

  void set_waveform(Waveform waveform) { waveform_ = std::move(waveform); }
  void set_dc(double v) { waveform_ = Waveform::dc(v); }
  void set_ac_magnitude(double mag) { ac_mag_ = mag; }
  const Waveform& waveform() const { return waveform_; }

  /// Branch current (A) flowing a -> b in solution x.
  double branch_current(const Vec& x) const { return x[static_cast<std::size_t>(branch_base())]; }

 private:
  int a_, b_;
  Waveform waveform_;
  double ac_mag_;
};

/// Independent current source driving current from node `a` to node `b`.
class ISource final : public Device {
 public:
  ISource(int a, int b, Waveform waveform, double ac_mag = 0.0);
  void stamp_nonlinear(RealStamper& s, const NonlinearStampArgs& args) const override;
  void stamp_ac(ComplexStamper& s, double omega, const Vec& op) const override;
  void stamp_ac_parts(RealStamper& g, RealStamper& c, CVec& rhs, const Vec& op) const override;
  void stamp_ac_rhs(CVec& rhs) const override;
  void collect_time_inputs(double time, Vec& out) const override;

  void set_waveform(Waveform waveform) { waveform_ = std::move(waveform); }
  void set_dc(double i) { waveform_ = Waveform::dc(i); }
  void set_ac_magnitude(double mag) { ac_mag_ = mag; }

 private:
  int a_, b_;
  Waveform waveform_;
  double ac_mag_;
};

/// Current sink with compliance: drains i = I(t) * f(v) from node `a` to
/// node `b`, where v = V(a) - V(b) and
///   f(v) = 0 for v <= 0, v/v_knee for 0 < v < v_knee, 1 for v >= v_knee.
/// Unlike an ideal ISource it cannot pull a starved node to unphysical
/// voltages — the standard electronic-load model for regulator testbenches.
class CurrentSinkLoad final : public Device {
 public:
  CurrentSinkLoad(int a, int b, Waveform current, double v_knee = 0.2);
  void stamp_nonlinear(RealStamper& s, const NonlinearStampArgs& args) const override;
  void stamp_ac(ComplexStamper& s, double omega, const Vec& op) const override;
  void stamp_ac_parts(RealStamper& g, RealStamper& c, CVec& rhs, const Vec& op) const override;
  void collect_time_inputs(double time, Vec& out) const override;

  void set_waveform(Waveform current) { current_ = std::move(current); }
  void set_dc(double i) { current_ = Waveform::dc(i); }

  /// Actual current drawn at the operating point `x` (DC evaluation).
  double current_at(const Vec& x) const;

 private:
  /// f(v) and df/dv at the given compliance voltage.
  std::pair<double, double> shape(double v) const;

  int a_, b_;
  Waveform current_;
  double v_knee_;
};

/// Voltage-controlled voltage source: V(p) - V(n) = gain * (V(cp) - V(cn)).
class Vcvs final : public Device {
 public:
  Vcvs(int p, int n, int cp, int cn, double gain);
  int num_branches() const override { return 1; }
  void stamp_nonlinear(RealStamper& s, const NonlinearStampArgs& args) const override;
  void stamp_ac(ComplexStamper& s, double omega, const Vec& op) const override;
  void stamp_ac_parts(RealStamper& g, RealStamper& c, CVec& rhs, const Vec& op) const override;

 private:
  int p_, n_, cp_, cn_;
  double gain_;
};

}  // namespace maopt::spice
