#include "spice/noise_analysis.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "linalg/lu.hpp"
#include "spice/ac_analysis.hpp"

namespace maopt::spice {

double integrate_psd(const std::vector<double>& freqs, const std::vector<double>& psd) {
  double total = 0.0;
  for (std::size_t i = 1; i < freqs.size(); ++i)
    total += 0.5 * (psd[i] + psd[i - 1]) * (freqs[i] - freqs[i - 1]);
  return total;
}

NoiseResult NoiseAnalysis::run(Netlist& netlist, const Vec& op, int out_pos, int out_neg,
                               const std::vector<double>& frequencies) const {
  if (!netlist.prepared()) netlist.prepare();
  NoiseResult result;
  result.frequencies = frequencies;
  result.output_psd.reserve(frequencies.size());

  const std::vector<NoiseSource> sources = netlist.collect_noise(op);

  netlist.build_ac_parts(op, g_, c_, rhs_);
  e_out_.assign(netlist.system_size(), std::complex<double>{});
  if (out_pos != kGround) e_out_[static_cast<std::size_t>(out_pos)] = {1.0, 0.0};
  if (out_neg != kGround) e_out_[static_cast<std::size_t>(out_neg)] = {-1.0, 0.0};

  for (const double f : frequencies) {
    const double omega = 2.0 * std::numbers::pi * f;
    combine_ac_system(g_, c_, omega, lu_.matrix());
    if (!linalg::lu_factor(lu_)) throw std::runtime_error("LU: matrix is singular");
    linalg::lu_solve_factored_transposed(lu_, e_out_, z_);
    double psd = 0.0;
    for (const auto& src : sources) {
      const std::complex<double> za = Netlist::voltage(z_, src.node_a);
      const std::complex<double> zb = Netlist::voltage(z_, src.node_b);
      psd += std::norm(za - zb) * src.psd(f);
    }
    result.output_psd.push_back(psd);
  }
  result.total_rms = std::sqrt(integrate_psd(result.frequencies, result.output_psd));
  return result;
}

}  // namespace maopt::spice
