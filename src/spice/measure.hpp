// Post-processing measurements over analysis results — the equivalents of
// HSPICE .MEASURE statements used by the paper's testbenches: gain, unity-
// gain frequency, phase margin, bandwidth, settling time, overshoot.
#pragma once

#include <optional>
#include <vector>

#include "spice/ac_analysis.hpp"

namespace maopt::spice {

/// |V(node)| in dB20 across the sweep.
std::vector<double> magnitude_db(const AcSweep& sweep, int node);
/// Unwrapped phase in degrees across the sweep (continuous, starts in (-180, 180]).
std::vector<double> phase_deg_unwrapped(const AcSweep& sweep, int node);

/// Magnitude at the lowest swept frequency, in dB.
double dc_gain_db(const AcSweep& sweep, int node);

/// Frequency where |V(node)| crosses 1 (0 dB), log-interpolated. nullopt if
/// the magnitude never crosses unity within the sweep.
std::optional<double> unity_gain_frequency(const AcSweep& sweep, int node);

/// Phase margin in degrees: 180 + (phase at UGF relative to the low-frequency
/// phase). nullopt when there is no unity crossing.
std::optional<double> phase_margin_deg(const AcSweep& sweep, int node);

/// -3 dB bandwidth relative to the low-frequency magnitude.
std::optional<double> bandwidth_3db(const AcSweep& sweep, int node);

/// Interpolated |V(node)| (linear) at frequency f.
double magnitude_at(const AcSweep& sweep, int node, double f);

/// Settling time: the earliest time T (measured from t_from) such that the
/// waveform stays within +/- tol of `final_value` for all t >= T.
/// nullopt if it never settles within the record.
std::optional<double> settling_time(const std::vector<double>& time,
                                    const std::vector<double>& waveform, double t_from,
                                    double final_value, double tol);

/// Peak deviation beyond the final value, as a fraction of the step size.
double overshoot_fraction(const std::vector<double>& waveform, std::size_t from_index,
                          double initial_value, double final_value);

/// Gain margin in dB: -|H| (dB) at the frequency where the unwrapped phase
/// (relative to its low-frequency value) crosses -180 degrees. nullopt when
/// the phase never reaches -180 within the sweep.
std::optional<double> gain_margin_db(const AcSweep& sweep, int node);

/// Maximum |dv/dt| over the record [V/s]; 0 for records shorter than 2 points.
double slew_rate(const std::vector<double>& time, const std::vector<double>& waveform);

/// 10 %-90 % rise time of a step from `initial_value` to `final_value`,
/// measured from t_from. nullopt if either threshold is never crossed.
std::optional<double> rise_time(const std::vector<double>& time,
                                const std::vector<double>& waveform, double t_from,
                                double initial_value, double final_value);

}  // namespace maopt::spice
