#include "spice/dc_sweep.hpp"

#include <stdexcept>

namespace maopt::spice {

std::vector<double> DcSweep::linear_grid(double from, double to, int points) {
  if (points < 2) throw std::invalid_argument("DcSweep: need at least 2 points");
  std::vector<double> grid;
  grid.reserve(static_cast<std::size_t>(points));
  for (int k = 0; k < points; ++k)
    grid.push_back(from + (to - from) * static_cast<double>(k) / (points - 1));
  return grid;
}

DcSweepResult DcSweep::run(Netlist& netlist, const std::vector<double>& values,
                           const std::function<void(double)>& apply) const {
  if (!netlist.prepared()) netlist.prepare();
  DcSweepResult result;
  result.values = values;
  result.solutions.reserve(values.size());
  result.converged.reserve(values.size());

  DcAnalysis dc(options_);
  Vec guess;
  for (const double v : values) {
    apply(v);
    const DcResult point = guess.empty() ? dc.solve(netlist) : dc.solve(netlist, &guess);
    if (point.converged) {
      guess = point.x;
      result.solutions.push_back(point.x);
      result.converged.push_back(true);
    } else {
      // Hold the previous solution so curves stay plottable.
      result.solutions.push_back(guess.empty() ? Vec(netlist.system_size(), 0.0) : guess);
      result.converged.push_back(false);
      result.all_converged = false;
    }
  }
  return result;
}

}  // namespace maopt::spice
