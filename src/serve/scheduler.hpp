// FairShareScheduler — deficit-round-robin admission over simulation grants.
//
// The daemon installs one scheduler as the eval::BatchAdmission gate of every
// EvalService it owns; each optimizer batch then blocks at the service's
// evaluate entry until the scheduler grants its tenant `n` simulation slots.
// Fairness is weighted DRR over *simulation requests* (the budget currency):
// each replenishment round credits every waiting tenant `quantum * weight`
// deficit, and a tenant's head request is admitted once its deficit covers
// the request and the slots fit under `capacity`. Over any window where two
// equal-weight tenants both stay backlogged, their granted-simulation totals
// track each other to within one batch plus one quantum — the "within 2x of
// proportional share" invariant tests/serve/test_scheduler.cpp asserts.
//
// Invariants (DESIGN.md section 10):
//   * FIFO per tenant: requests from one tenant are granted in arrival order.
//   * No starvation: every waiter is eventually granted — deficits of waiting
//     tenants grow without bound while capacity frees up, and a request
//     larger than `capacity` is admitted alone (when in_use == 0).
//   * Work conservation: capacity permitting, a grant is never withheld from
//     the only backlogged tenant.
//   * mutex_ is a leaf lock: acquire()/release() never call out while holding
//     it, and the EvalService holds no lock while blocked in acquire().
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>

#include "common/thread_annotations.hpp"
#include "eval/eval_service.hpp"

namespace maopt::serve {

struct SchedulerConfig {
  /// Maximum simulation slots in flight across all tenants; 0 = unlimited
  /// (admission degenerates to pure accounting — nothing ever blocks).
  std::size_t capacity = 0;
  /// Deficit credited per replenishment round to a waiting tenant of
  /// weight 1.0 — the DRR quantum, in simulations.
  std::size_t quantum = 8;
};

class FairShareScheduler final : public eval::BatchAdmission {
 public:
  explicit FairShareScheduler(SchedulerConfig config = {});

  FairShareScheduler(const FairShareScheduler&) = delete;
  FairShareScheduler& operator=(const FairShareScheduler&) = delete;

  /// Sets (or registers) a tenant's fair-share weight; default weight is 1.0.
  /// Weights <= 0 are clamped to a minimal positive share.
  void set_weight(const std::string& tenant, double weight) MAOPT_EXCLUDES(mutex_);

  /// Blocks the caller until `n` slots are granted to `tenant`. Requests from
  /// one tenant are served FIFO; an unknown tenant is registered at weight 1.
  void acquire(const std::string& tenant, std::size_t n) override MAOPT_EXCLUDES(mutex_);

  /// Returns `n` slots and wakes whatever the freed capacity now admits.
  void release(const std::string& tenant, std::size_t n) override MAOPT_EXCLUDES(mutex_);

  struct TenantStats {
    double weight = 1.0;
    std::uint64_t granted_sims = 0;  ///< lifetime simulations admitted
    std::size_t waiting = 0;         ///< requests currently queued
  };

  /// Per-tenant grant totals — the measurement behind the fairness bound.
  std::map<std::string, TenantStats> stats() const MAOPT_EXCLUDES(mutex_);

  /// Slots currently granted and not yet released.
  std::size_t in_use() const MAOPT_EXCLUDES(mutex_);

  const SchedulerConfig& config() const { return config_; }

 private:
  struct Waiter {
    std::size_t n = 0;
    bool granted = false;
  };

  struct TenantState {
    double weight = 1.0;
    double deficit = 0.0;
    std::deque<Waiter*> queue;  ///< FIFO of blocked acquire() calls (stack-owned)
    std::uint64_t granted_sims = 0;
  };

  /// One admission sweep: grants every head request the deficits and
  /// capacity currently admit, replenishing deficits (one DRR round per
  /// pass) while some head still fits under capacity. Callers notify the
  /// condvar after it returns true (something was granted).
  bool dispatch() MAOPT_REQUIRES(mutex_);

  TenantState& state_for(const std::string& tenant) MAOPT_REQUIRES(mutex_);

  const SchedulerConfig config_;

  mutable Mutex mutex_;  ///< leaf lock (below OptDaemon::mutex_ in the hierarchy)
  CondVar granted_cv_;
  std::unordered_map<std::string, TenantState> tenants_ MAOPT_GUARDED_BY(mutex_);
  std::size_t in_use_ MAOPT_GUARDED_BY(mutex_) = 0;
  std::uint64_t rr_cursor_ MAOPT_GUARDED_BY(mutex_) = 0;  ///< rotates scan start
};

}  // namespace maopt::serve
