// OptDaemon — optimization-as-a-service over one shared evaluation backend.
//
// A long-running in-process daemon that owns one worker pool and one
// FairShareScheduler, builds a ServiceStack (EvalService, optionally behind
// a ResilientEvaluator) per registered problem, and multiplexes many named
// optimization *jobs* over them. Each job runs on its own driving thread but
// every simulation funnels through the shared pool under the scheduler's
// admission gate, so N concurrent jobs contend for one set of simulator
// workers with weighted fair sharing instead of oversubscribing the machine.
//
// Job lifecycle (states in JobState):
//
//                    submit            pause              resume
//   Pending ----> Running ----> Pausing ----> Paused ----> Running ...
//                    |                            |
//                    | kill / budget / error      | kill
//                    v                            v
//            Killed / Done / Failed            Killed
//
// Pause is cooperative: the job's RunControl raises Pause, the optimizer
// checkpoints at its next iteration boundary (MA-family only — the other
// optimizers are not checkpointable) and the thread vacates the scheduler.
// Resume replays the checkpoint bit-identically (MaOptimizer::resume), so a
// paused+resumed job reproduces the uninterrupted trajectory exactly.
//
// Tenancy: every job belongs to a tenant. A tenant gets (a) a fair-share
// weight in the scheduler and (b) a private ResultCache namespace per
// problem (journal under work_dir/tenants/<tenant>/<problem>), while the
// in-flight dedup layer stays shared — two tenants asking for the same
// design still share one simulation, and each records the result in its own
// journal.
//
// Telemetry: the daemon-level observer receives ONLY job-scoped events
// (JobSubmitted / JobStateChanged / JobFinished) — concurrent jobs would
// interleave run-scoped brackets illegally in one stream. Per-run events go
// to each job's own JSONL sink (JobSpec::jsonl_path).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "core/history.hpp"
#include "obs/observer.hpp"
#include "serve/scheduler.hpp"
#include "serve/service_config.hpp"

namespace maopt::serve {

enum class JobState {
  Pending,   ///< submitted, worker thread not yet running
  Running,   ///< optimizer loop in progress
  Pausing,   ///< pause requested, waiting for the next yield point
  Paused,    ///< checkpointed and vacated; resumable
  Killing,   ///< kill requested, waiting for the next yield point
  Done,      ///< full simulation budget spent
  Failed,    ///< optimizer aborted (breaker) or worker threw
  Killed,    ///< terminated by kill()
};

const char* to_string(JobState state);

/// True for states with (or about to have) a live worker thread.
bool is_active(JobState state);
/// True for states a job can never leave.
bool is_terminal(JobState state);

/// Everything needed to run one optimization as a job. `problem` must name a
/// problem previously added via OptDaemon::add_problem; `algorithm` is one
/// of "MA-Opt", "MA-Opt1", "MA-Opt2", "DNN-Opt" (checkpointable / pausable)
/// or "Random", "PSO", "DE", "BO" (not pausable).
struct JobSpec {
  std::string name;              ///< unique job id (also the checkpoint stem)
  std::string tenant;            ///< fair-share + cache namespace ("" = default)
  std::string problem;           ///< registered problem name
  /// Deck submission: when non-empty, submit() compiles this SPICE deck (plus
  /// `spec_path`, or the deck's sibling .spec file) into a DeckProblem and
  /// registers it under `problem` (defaulting to the deck's file stem) unless
  /// a problem of that name already exists — so re-submitting the same deck
  /// reuses the warm ServiceStack and its result cache.
  std::string deck_path;
  std::string spec_path;         ///< deck spec file; empty = deck path with .spec
  std::string algorithm = "MA-Opt";
  std::uint64_t seed = 1;
  std::size_t simulation_budget = 100;
  std::size_t initial_samples = 40;  ///< X_init size sampled before the loop
  int checkpoint_every = 0;          ///< periodic snapshots; 0 = only on pause
  std::string jsonl_path;            ///< per-job run-event stream; empty = none
  /// Start from work_dir/<name>.ckpt instead of a fresh initial set — how a
  /// restarted daemon picks a previous daemon's paused job back up (MA-family
  /// only; submit() rejects it for non-checkpointable algorithms).
  bool resume_from_checkpoint = false;
};

/// Point-in-time view of a job, safe to read while it runs.
struct JobStatus {
  std::uint64_t id = 0;
  JobSpec spec;
  JobState state = JobState::Pending;
  std::uint64_t simulations = 0;  ///< post-initial simulations so far
  double best_fom = 0.0;
  bool feasible = false;
  double wall_seconds = 0.0;  ///< summed across run segments
  std::string error;          ///< abort reason / exception text when Failed
  obs::RunCounters counters;  ///< accumulated across run segments
};

struct DaemonConfig {
  /// Root for daemon state: checkpoints (work_dir/<job>.ckpt) and tenant
  /// journals (work_dir/tenants/<tenant>/<problem>/). Created on demand.
  std::string work_dir = "maopt_daemon";
  std::size_t num_threads = 0;  ///< shared simulator pool width; 0 = hardware
  ServiceConfig service;        ///< per-problem stack template (pool overridden)
  SchedulerConfig scheduler;    ///< fair-share admission knobs
  /// Job-event sink (JobSubmitted / JobStateChanged / JobFinished); not
  /// owned, may be null, must outlive the daemon.
  obs::RunObserver* observer = nullptr;
};

class OptDaemon {
 public:
  explicit OptDaemon(DaemonConfig config = {});
  /// Kills every active job and joins all worker threads.
  ~OptDaemon();

  OptDaemon(const OptDaemon&) = delete;
  OptDaemon& operator=(const OptDaemon&) = delete;

  /// Registers a problem under `name`. Not owned; must outlive the daemon.
  /// Builds the problem's ServiceStack immediately (every known tenant's
  /// namespace is registered on it). Throws on a duplicate name.
  void add_problem(const std::string& name, const ckt::SizingProblem& problem);

  /// Compiles `deck_path` (+ `spec_path`, or the deck's sibling .spec when
  /// empty) into a DeckProblem owned by the daemon and registers it like
  /// add_problem. Throws spice::ParseError / std::invalid_argument when the
  /// deck does not compile, std::invalid_argument on a duplicate name.
  void add_deck(const std::string& name, const std::string& deck_path,
                const std::string& spec_path = "");

  /// Registers a tenant: scheduler weight + a private cache namespace on
  /// every problem stack. Idempotent (re-registering updates the weight).
  void register_tenant(const std::string& name, double weight = 1.0);

  /// Validates the spec, emits JobSubmitted, and starts the job's worker
  /// thread. Throws std::invalid_argument on an unknown problem/algorithm or
  /// duplicate job name. Returns the job id.
  std::uint64_t submit(const JobSpec& spec);

  /// Requests a cooperative pause (checkpoint + vacate). False when the job
  /// is unknown, not running, or not checkpointable (non-MA algorithms).
  bool pause(const std::string& name);

  /// Restarts a Paused job from its checkpoint (bit-identical replay, then
  /// live until the budget). False when the job is unknown or not paused.
  bool resume(const std::string& name);

  /// Requests termination. Running jobs stop at the next yield point; a
  /// Paused job is killed in place. False when unknown or already terminal.
  bool kill(const std::string& name);

  /// Blocks until the job leaves the active states (Paused counts as
  /// stopped, like a shell's fg returning on Ctrl-Z). Throws on unknown name.
  JobStatus wait(const std::string& name);

  /// Snapshot of one job / all jobs (sorted by id). Throws on unknown name.
  JobStatus status(const std::string& name) const;
  std::vector<JobStatus> jobs() const;

  FairShareScheduler& scheduler() { return scheduler_; }
  /// The shared evaluation service of a registered problem (for warm-start
  /// inspection and tests). Throws on unknown name.
  eval::EvalService& service(const std::string& problem);

  const DaemonConfig& config() const { return config_; }

 private:
  struct Job;

  Job* find_job(const std::string& name) const MAOPT_REQUIRES(mutex_);
  JobStatus status_locked(const Job& job) const MAOPT_REQUIRES(mutex_);
  /// Single choke point for state transitions: updates the state and emits
  /// JobStateChanged while still holding mutex_, so event order always
  /// matches transition order (from == previous to).
  void set_state(Job& job, JobState to, const std::string& reason) MAOPT_REQUIRES(mutex_);
  void emit_finished(Job& job) MAOPT_REQUIRES(mutex_);

  /// Worker-thread body: runs one segment (fresh or resumed) and records the
  /// outcome. Exceptions become Failed.
  void worker(Job* job, bool resuming);
  void run_segment(Job& job, bool resuming);

  struct ProblemEntry {
    const ckt::SizingProblem* problem = nullptr;
    /// Set for deck-compiled problems: the daemon owns them (user-registered
    /// problems stay caller-owned). Declared before `stack` so the stack —
    /// which references the problem — is destroyed first.
    std::unique_ptr<const ckt::SizingProblem> owned;
    std::unique_ptr<ServiceStack> stack;
  };

  /// Shared registration path: builds the ServiceStack and installs the
  /// entry. `owned` may be null (caller-owned problem). With
  /// `reuse_existing`, a duplicate name silently keeps the existing entry
  /// (how concurrent deck submits coalesce) instead of throwing.
  void add_problem_locked(const std::string& name, const ckt::SizingProblem& problem,
                          std::unique_ptr<const ckt::SizingProblem> owned, bool reuse_existing)
      MAOPT_REQUIRES(mutex_);

  DaemonConfig config_;
  std::unique_ptr<ThreadPool> pool_;  ///< shared simulator workers
  FairShareScheduler scheduler_;

  /// Lock hierarchy (DESIGN.md section 10): mutex_ sits above every lock it
  /// reaches — MulticastObserver::mutex_ / JsonlObserver::io_mutex_ (job
  /// events are emitted under it so event order matches transition order),
  /// FairShareScheduler::mutex_ (weight updates only — never a blocking
  /// acquire), and EvalService::tenants_mutex_ (namespace registration). It
  /// is never held while joining a worker thread or running a segment.
  mutable Mutex mutex_;
  CondVar state_cv_;  ///< signaled on every state transition
  std::map<std::string, ProblemEntry> problems_ MAOPT_GUARDED_BY(mutex_);
  std::map<std::string, double> tenants_ MAOPT_GUARDED_BY(mutex_);  ///< name -> weight
  std::map<std::string, std::unique_ptr<Job>> jobs_ MAOPT_GUARDED_BY(mutex_);
  std::uint64_t next_job_id_ MAOPT_GUARDED_BY(mutex_) = 1;
};

}  // namespace maopt::serve
