#include "serve/service_config.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace maopt::serve {

namespace {

void fail(const std::string& field, const std::string& rule) {
  throw std::invalid_argument("ServiceConfig: " + field + " " + rule);
}

}  // namespace

void ServiceConfig::validate() const {
  if (memory_capacity == 0) fail("memory_capacity", "must be >= 1");
  if (!std::isfinite(quant_epsilon) || quant_epsilon < 0.0)
    fail("quant_epsilon", "must be finite and >= 0");
  if (!std::isfinite(deadline_seconds) || deadline_seconds < 0.0)
    fail("deadline_seconds", "must be finite and >= 0 (0 disables)");
  if (max_retries < 0) fail("max_retries", "must be >= 0");
  if (!std::isfinite(retry_jitter_frac) || retry_jitter_frac < 0.0)
    fail("retry_jitter_frac", "must be finite and >= 0");
  if (!std::isfinite(max_metric_magnitude) || max_metric_magnitude <= 0.0)
    fail("max_metric_magnitude", "must be finite and > 0");
  // The same rules VariationSweepProblem enforces at construction, surfaced
  // here so a daemon rejects the job at submit time.
  if (!std::isfinite(sweep.k_sigma)) fail("sweep.k_sigma", "must be finite");
  if (!(sweep.yield_target > 0.0) || sweep.yield_target > 1.0)
    fail("sweep.yield_target", "must be in (0, 1]");
  if (!(sweep.min_ok_fraction >= 0.0) || sweep.min_ok_fraction > 1.0)
    fail("sweep.min_ok_fraction", "must be in [0, 1]");
  if (sweep.breaker.trip_after < 0) fail("sweep.breaker.trip_after", "must be >= 0");
  if (sweep.breaker.cooldown < 1) fail("sweep.breaker.cooldown", "must be >= 1");
}

eval::EvalServiceConfig ServiceConfig::eval_config() const {
  eval::EvalServiceConfig c;
  c.num_threads = num_threads;
  c.shared_pool = shared_pool;
  c.memory_capacity = memory_capacity;
  c.cache_dir = cache_dir;
  c.quant_epsilon = quant_epsilon;
  c.use_sessions = use_sessions;
  return c;
}

ckt::ResilientConfig ServiceConfig::resilient_config() const {
  ckt::ResilientConfig c;
  c.deadline_seconds = deadline_seconds;
  c.max_retries = max_retries;
  c.retry_jitter_frac = retry_jitter_frac;
  c.max_metric_magnitude = max_metric_magnitude;
  c.seed = retry_seed;
  return c;
}

ServiceStack::ServiceStack(const ckt::SizingProblem& problem, const ServiceConfig& config)
    : config_(config) {
  config_.validate();
  const ckt::SizingProblem* inner = &problem;
  if (config_.resilient) {
    resilient_ = std::make_unique<ckt::ResilientEvaluator>(problem, config_.resilient_config());
    inner = resilient_.get();
  }
  service_ = std::make_unique<eval::EvalService>(*inner, config_.eval_config());
}

}  // namespace maopt::serve
