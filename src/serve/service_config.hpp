// ServiceConfig — the one validated place to configure the evaluation stack
// (PR 9). What used to be four scattered constructors (ResilientEvaluator
// retry/deadline knobs, EvalService thread/cache settings, SweepPolicyConfig
// defaults, plus ad-hoc example flags) is now a single builder:
//
//   auto config = serve::ServiceConfig::builder()
//                     .threads(8)
//                     .cache_dir("cache")
//                     .resilient(true)
//                     .max_retries(3)
//                     .build();          // throws std::invalid_argument
//   serve::ServiceStack stack(problem, config);
//   optimizer.run(stack.service(), ...);
//
// build() validates every knob (the same rules the underlying layers
// enforce, surfaced before any thread or journal is created) so a daemon
// rejects a bad job configuration at submit time, not mid-run.
#pragma once

#include <string>

#include "circuits/resilient_problem.hpp"
#include "circuits/variation_sweep.hpp"
#include "eval/eval_service.hpp"

namespace maopt {
class ThreadPool;
}

namespace maopt::serve {

struct ServiceConfig {
  // --- EvalService knobs (eval::EvalServiceConfig) ---
  std::size_t num_threads = 0;  ///< batch workers; 0 = hardware_concurrency
  ThreadPool* shared_pool = nullptr;  ///< externally-owned pool (overrides num_threads)
  std::size_t memory_capacity = 4096;
  std::string cache_dir;       ///< persistent journal directory; empty = memory-only
  double quant_epsilon = 0.0;  ///< cache-key design quantization
  bool use_sessions = true;

  // --- ResilientEvaluator knobs (ckt::ResilientConfig); applied only when
  // --- `resilient` is set, otherwise the problem is wrapped bare. ---
  bool resilient = false;
  double deadline_seconds = 0.0;
  int max_retries = 2;
  double retry_jitter_frac = 1e-3;
  double max_metric_magnitude = 1e30;
  std::uint64_t retry_seed = 0x5EEDF00DULL;

  // --- Sweep-policy defaults handed to robust / yield workloads ---
  ckt::SweepPolicyConfig sweep;

  class Builder;
  static Builder builder();

  /// The validated sub-configs the stack layers consume.
  eval::EvalServiceConfig eval_config() const;
  ckt::ResilientConfig resilient_config() const;

  /// Validates every knob; throws std::invalid_argument naming the first
  /// offending field. Builder::build() calls this; configs assembled by
  /// hand can call it directly.
  void validate() const;
};

/// Fluent builder over ServiceConfig. Setters return *this; build()
/// validates and returns the config by value.
class ServiceConfig::Builder {
 public:
  Builder& threads(std::size_t n) { config_.num_threads = n; return *this; }
  Builder& pool(ThreadPool* shared) { config_.shared_pool = shared; return *this; }
  Builder& memory_capacity(std::size_t n) { config_.memory_capacity = n; return *this; }
  Builder& cache_dir(std::string dir) { config_.cache_dir = std::move(dir); return *this; }
  Builder& quant_epsilon(double eps) { config_.quant_epsilon = eps; return *this; }
  Builder& sessions(bool on) { config_.use_sessions = on; return *this; }

  Builder& resilient(bool on) { config_.resilient = on; return *this; }
  Builder& deadline_seconds(double s) { config_.deadline_seconds = s; return *this; }
  Builder& max_retries(int n) { config_.max_retries = n; return *this; }
  Builder& retry_jitter_frac(double f) { config_.retry_jitter_frac = f; return *this; }
  Builder& max_metric_magnitude(double m) { config_.max_metric_magnitude = m; return *this; }
  Builder& retry_seed(std::uint64_t seed) { config_.retry_seed = seed; return *this; }

  Builder& sweep_policy(ckt::SweepPolicyConfig policy) {
    config_.sweep = policy;
    return *this;
  }
  Builder& failure_policy(ckt::SweepFailurePolicy policy) {
    config_.sweep.failure_policy = policy;
    return *this;
  }
  Builder& yield_target(double fraction) {
    config_.sweep.yield_target = fraction;
    return *this;
  }

  ServiceConfig build() const {
    config_.validate();
    return config_;
  }

 private:
  ServiceConfig config_;
};

inline ServiceConfig::Builder ServiceConfig::builder() { return Builder{}; }

/// Owns the decorator chain one validated config describes:
///
///   problem  <-  [ResilientEvaluator]  <-  EvalService
///
/// The wrapped problem stays caller-owned and must outlive the stack; the
/// optional resilience layer and the service are owned here. service() is
/// the SizingProblem optimizers should run against.
class ServiceStack {
 public:
  ServiceStack(const ckt::SizingProblem& problem, const ServiceConfig& config);

  ServiceStack(const ServiceStack&) = delete;
  ServiceStack& operator=(const ServiceStack&) = delete;

  eval::EvalService& service() { return *service_; }
  const eval::EvalService& service() const { return *service_; }
  const ServiceConfig& config() const { return config_; }

  /// The resilience layer, when the config enabled one (else null).
  const ckt::ResilientEvaluator* resilient() const { return resilient_.get(); }

 private:
  ServiceConfig config_;
  std::unique_ptr<ckt::ResilientEvaluator> resilient_;
  std::unique_ptr<eval::EvalService> service_;
};

}  // namespace maopt::serve
