#include "serve/scheduler.hpp"

#include <algorithm>
#include <vector>

namespace maopt::serve {

namespace {
constexpr double kMinWeight = 1e-3;
}  // namespace

FairShareScheduler::FairShareScheduler(SchedulerConfig config) : config_(config) {}

FairShareScheduler::TenantState& FairShareScheduler::state_for(const std::string& tenant) {
  return tenants_[tenant];  // value-initialized on first sight: weight 1, empty queue
}

void FairShareScheduler::set_weight(const std::string& tenant, double weight) {
  const MutexLock lock(mutex_);
  state_for(tenant).weight = std::max(weight, kMinWeight);
}

void FairShareScheduler::acquire(const std::string& tenant, std::size_t n) {
  if (n == 0) return;
  MutexLock lock(mutex_);
  TenantState& state = state_for(tenant);
  if (config_.capacity == 0) {  // unlimited: pure accounting, nothing blocks
    state.granted_sims += n;
    in_use_ += n;
    return;
  }
  Waiter waiter{n, false};
  state.queue.push_back(&waiter);
  if (dispatch()) granted_cv_.notify_all();
  granted_cv_.wait(lock, [&waiter] { return waiter.granted; });
}

void FairShareScheduler::release(const std::string& tenant, std::size_t n) {
  (void)tenant;  // grants are fungible once issued; the ledger was kept at acquire
  if (n == 0) return;
  const MutexLock lock(mutex_);
  in_use_ -= std::min(n, in_use_);
  if (config_.capacity == 0) return;
  if (dispatch()) granted_cv_.notify_all();
}

bool FairShareScheduler::dispatch() {
  bool granted_any = false;
  for (;;) {
    // Deterministic scan order: sorted tenant names, start rotated by the
    // round-robin cursor so ties do not systematically favor one name.
    std::vector<std::string> names;
    names.reserve(tenants_.size());
    for (const auto& [name, state] : tenants_)
      if (!state.queue.empty()) names.push_back(name);
    if (names.empty()) break;
    std::sort(names.begin(), names.end());

    bool progress = false;
    const std::size_t start = static_cast<std::size_t>(rr_cursor_ % names.size());
    for (std::size_t k = 0; k < names.size(); ++k) {
      TenantState& state = tenants_[names[(start + k) % names.size()]];
      while (!state.queue.empty()) {
        Waiter* waiter = state.queue.front();
        // A request wider than the whole capacity is admitted alone (the
        // in_use_ == 0 escape) so oversized batches cannot deadlock.
        const bool fits = in_use_ == 0 || in_use_ + waiter->n <= config_.capacity;
        if (!fits || state.deficit < static_cast<double>(waiter->n)) break;
        state.deficit -= static_cast<double>(waiter->n);
        state.granted_sims += waiter->n;
        in_use_ += waiter->n;
        waiter->granted = true;
        state.queue.pop_front();
        // Standard DRR: an emptied queue forfeits banked credit, so an idle
        // tenant cannot save up and later monopolize the pipe.
        if (state.queue.empty()) state.deficit = 0.0;
        ++rr_cursor_;
        progress = true;
        granted_any = true;
      }
    }
    if (progress) continue;

    // Nothing admissible at current deficits. Replenish one DRR round iff
    // some head would fit capacity-wise — otherwise we are waiting on a
    // release() and credit must not accrue meanwhile.
    bool any_fits = false;
    for (const std::string& name : names) {
      const Waiter* head = tenants_[name].queue.front();
      if (in_use_ == 0 || in_use_ + head->n <= config_.capacity) {
        any_fits = true;
        break;
      }
    }
    if (!any_fits) break;
    for (const std::string& name : names) {
      TenantState& state = tenants_[name];
      state.deficit += static_cast<double>(config_.quantum) * state.weight;
    }
  }
  return granted_any;
}

std::map<std::string, FairShareScheduler::TenantStats> FairShareScheduler::stats() const {
  const MutexLock lock(mutex_);
  std::map<std::string, TenantStats> out;
  for (const auto& [name, state] : tenants_)
    out[name] = TenantStats{state.weight, state.granted_sims, state.queue.size()};
  return out;
}

std::size_t FairShareScheduler::in_use() const {
  const MutexLock lock(mutex_);
  return in_use_;
}

}  // namespace maopt::serve
