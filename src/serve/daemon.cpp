#include "serve/daemon.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/de.hpp"
#include "deck/deck_problem.hpp"
#include "core/history_io.hpp"
#include "core/ma_optimizer.hpp"
#include "core/pso.hpp"
#include "core/random_search.hpp"
#include "gp/bo_optimizer.hpp"
#include "obs/jsonl_writer.hpp"

namespace maopt::serve {

namespace {

bool is_ma_family(const std::string& algorithm) {
  return algorithm == "MA-Opt" || algorithm == "MA-Opt1" || algorithm == "MA-Opt2" ||
         algorithm == "DNN-Opt";
}

bool known_algorithm(const std::string& algorithm) {
  return is_ma_family(algorithm) || algorithm == "Random" || algorithm == "PSO" ||
         algorithm == "DE" || algorithm == "BO";
}

core::MaOptConfig ma_config_for(const JobSpec& spec, const std::string& checkpoint_path) {
  core::MaOptConfig config;
  if (spec.algorithm == "DNN-Opt")
    config = core::MaOptConfig::dnn_opt();
  else if (spec.algorithm == "MA-Opt1")
    config = core::MaOptConfig::ma_opt1();
  else if (spec.algorithm == "MA-Opt2")
    config = core::MaOptConfig::ma_opt2();
  else
    config = core::MaOptConfig::ma_opt();
  config.checkpoint_path = checkpoint_path;
  config.checkpoint_every = spec.checkpoint_every;
  return config;
}

std::unique_ptr<core::Optimizer> make_optimizer(const JobSpec& spec,
                                                const std::string& checkpoint_path) {
  if (is_ma_family(spec.algorithm))
    return std::make_unique<core::MaOptimizer>(ma_config_for(spec, checkpoint_path));
  if (spec.algorithm == "Random") return std::make_unique<core::RandomSearch>();
  if (spec.algorithm == "PSO") return std::make_unique<core::PsoOptimizer>();
  if (spec.algorithm == "DE") return std::make_unique<core::DeOptimizer>();
  if (spec.algorithm == "BO") return std::make_unique<gp::BoOptimizer>();
  throw std::invalid_argument("OptDaemon: unknown algorithm: " + spec.algorithm);
}

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::Pending: return "pending";
    case JobState::Running: return "running";
    case JobState::Pausing: return "pausing";
    case JobState::Paused: return "paused";
    case JobState::Killing: return "killing";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Killed: return "killed";
  }
  return "unknown";
}

bool is_active(JobState state) {
  return state == JobState::Pending || state == JobState::Running ||
         state == JobState::Pausing || state == JobState::Killing;
}

bool is_terminal(JobState state) {
  return state == JobState::Done || state == JobState::Failed || state == JobState::Killed;
}

/// The level-triggered pause/kill signal a job's optimizer polls. Kill
/// overrides a pending pause; pause never downgrades a kill.
class JobControl final : public core::RunControl {
 public:
  Signal poll() override { return signal_.load(std::memory_order_acquire); }

  void request_pause() {
    Signal expected = Signal::None;
    signal_.compare_exchange_strong(expected, Signal::Pause, std::memory_order_acq_rel);
  }
  void request_kill() { signal_.store(Signal::Kill, std::memory_order_release); }
  void clear() { signal_.store(Signal::None, std::memory_order_release); }
  Signal current() const { return signal_.load(std::memory_order_acquire); }

 private:
  std::atomic<Signal> signal_{Signal::None};
};

/// Per-job run-event sink: tracks live progress (latest iteration) and folds
/// RunCounters across run segments (a paused+resumed job emits one
/// RunFinished per segment). Two counter families fold differently:
/// trajectory-scoped counters (simulations, failures, iterations,
/// ns_iterations) are recomputed from the full history each segment — replay
/// included — so the last segment's value IS the job total and is
/// overwritten; work-scoped counters (retries, checkpoints, cache traffic)
/// only meter that segment's live effort, so they accumulate.
class JobProgress final : public obs::RunObserver {
 public:
  void on_iteration_completed(const obs::IterationCompleted& event) override {
    const MutexLock lock(mutex_);
    simulations_ = event.simulations_done;
    best_fom_ = event.best_fom;
    feasible_ = event.feasible_found;
  }

  // Handler signature consuming the bracket event, not a second emission;
  // brackets stay owned by optimizer.cpp.
  void on_run_finished(
      const obs::RunFinished& event) override {  // maopt-lint: allow(observer-bracketing)
    const MutexLock lock(mutex_);
    simulations_ = event.simulations;
    best_fom_ = event.best_fom;
    feasible_ = event.feasible;
    wall_seconds_ += event.wall_seconds;
    counters_.simulations = event.counters.simulations;
    counters_.failures = event.counters.failures;
    counters_.iterations = event.counters.iterations;
    counters_.ns_iterations = event.counters.ns_iterations;
    counters_.retries += event.counters.retries;
    counters_.checkpoints += event.counters.checkpoints;
    counters_.checkpoint_bytes += event.counters.checkpoint_bytes;
    counters_.cache_hits += event.counters.cache_hits;
    counters_.cache_misses += event.counters.cache_misses;
    counters_.cache_coalesced += event.counters.cache_coalesced;
  }

  void snapshot(JobStatus& out) const {
    const MutexLock lock(mutex_);
    out.simulations = simulations_;
    out.best_fom = best_fom_;
    out.feasible = feasible_;
    out.wall_seconds = wall_seconds_;
    out.counters = counters_;
  }

 private:
  mutable Mutex mutex_;  ///< leaf lock (below OptDaemon::mutex_)
  std::uint64_t simulations_ MAOPT_GUARDED_BY(mutex_) = 0;
  double best_fom_ MAOPT_GUARDED_BY(mutex_) = 0.0;
  bool feasible_ MAOPT_GUARDED_BY(mutex_) = false;
  double wall_seconds_ MAOPT_GUARDED_BY(mutex_) = 0.0;
  obs::RunCounters counters_ MAOPT_GUARDED_BY(mutex_);
};

/// All per-job state. Mutable fields (state, error, thread handle) are
/// guarded by the daemon's mutex_ by discipline — Job is a nested type, so
/// the annotation cannot name the owning instance's lock.
struct OptDaemon::Job {
  std::uint64_t id = 0;
  JobSpec spec;
  JobState state = JobState::Pending;
  bool checkpointable = false;
  std::string checkpoint_path;
  std::string error;
  bool finished_emitted = false;

  JobControl control;
  JobProgress progress;
  std::unique_ptr<obs::JsonlObserver> jsonl;
  obs::MulticastObserver run_observer;
  std::thread thread;
};

OptDaemon::OptDaemon(DaemonConfig config)
    : config_(std::move(config)),
      pool_(std::make_unique<ThreadPool>(config_.num_threads == 0
                                             ? std::thread::hardware_concurrency()
                                             : config_.num_threads)),
      scheduler_(config_.scheduler) {
  config_.service.validate();
  std::filesystem::create_directories(config_.work_dir);
}

OptDaemon::~OptDaemon() {
  std::vector<std::thread> threads;
  {
    const MutexLock lock(mutex_);
    for (auto& [name, job] : jobs_) {
      if (is_active(job->state)) {
        job->control.request_kill();
        if (job->state != JobState::Killing) set_state(*job, JobState::Killing, "daemon shutdown");
      }
      if (job->thread.joinable()) threads.push_back(std::move(job->thread));
    }
  }
  for (std::thread& thread : threads) thread.join();
}

void OptDaemon::add_problem(const std::string& name, const ckt::SizingProblem& problem) {
  const MutexLock lock(mutex_);
  add_problem_locked(name, problem, nullptr, /*reuse_existing=*/false);
}

void OptDaemon::add_deck(const std::string& name, const std::string& deck_path,
                         const std::string& spec_path) {
  // Compile outside the lock: elaboration reads files and builds a nominal
  // validation session, neither of which belongs under the daemon mutex.
  auto problem = std::make_unique<deck::DeckProblem>(
      deck::DeckProblem::from_files(deck_path, spec_path));
  const MutexLock lock(mutex_);
  const ckt::SizingProblem& ref = *problem;
  add_problem_locked(name, ref, std::move(problem), /*reuse_existing=*/false);
}

void OptDaemon::add_problem_locked(const std::string& name, const ckt::SizingProblem& problem,
                                   std::unique_ptr<const ckt::SizingProblem> owned,
                                   bool reuse_existing) {
  if (problems_.count(name) != 0) {
    if (reuse_existing) return;  // `owned` (if any) is discarded
    throw std::invalid_argument("OptDaemon: duplicate problem: " + name);
  }

  ServiceConfig service_config = config_.service;
  service_config.shared_pool = pool_.get();  // one simulator pool across all stacks
  if (service_config.cache_dir.empty())
    service_config.cache_dir = config_.work_dir + "/cache/" + name;

  ProblemEntry entry;
  entry.problem = &problem;
  entry.owned = std::move(owned);
  entry.stack = std::make_unique<ServiceStack>(problem, service_config);
  entry.stack->service().set_admission(&scheduler_);
  for (const auto& [tenant, weight] : tenants_) {
    if (!tenant.empty())
      entry.stack->service().register_tenant(tenant,
                                             config_.work_dir + "/tenants/" + tenant + "/" + name);
  }
  problems_.emplace(name, std::move(entry));
}

void OptDaemon::register_tenant(const std::string& name, double weight) {
  const MutexLock lock(mutex_);
  tenants_[name] = weight;
  scheduler_.set_weight(name, weight);
  if (name.empty()) return;  // the default namespace always exists
  for (auto& [problem_name, entry] : problems_)
    entry.stack->service().register_tenant(
        name, config_.work_dir + "/tenants/" + name + "/" + problem_name);
}

std::uint64_t OptDaemon::submit(const JobSpec& submitted) {
  JobSpec spec = submitted;
  if (!spec.deck_path.empty()) {
    if (spec.problem.empty())
      spec.problem = std::filesystem::path(spec.deck_path).stem().string();
    bool registered = false;
    {
      const MutexLock lock(mutex_);
      registered = problems_.count(spec.problem) != 0;
    }
    if (!registered) {
      // Compile outside the lock; two racing submits of the same deck both
      // compile, and the loser's problem is discarded by reuse_existing.
      auto problem = std::make_unique<deck::DeckProblem>(
          deck::DeckProblem::from_files(spec.deck_path, spec.spec_path));
      const MutexLock lock(mutex_);
      const ckt::SizingProblem& ref = *problem;
      add_problem_locked(spec.problem, ref, std::move(problem), /*reuse_existing=*/true);
    }
  }

  const MutexLock lock(mutex_);
  if (spec.name.empty()) throw std::invalid_argument("OptDaemon: job name must be non-empty");
  if (jobs_.count(spec.name) != 0)
    throw std::invalid_argument("OptDaemon: duplicate job name: " + spec.name);
  if (problems_.count(spec.problem) == 0)
    throw std::invalid_argument("OptDaemon: unknown problem: " + spec.problem);
  if (!known_algorithm(spec.algorithm))
    throw std::invalid_argument("OptDaemon: unknown algorithm: " + spec.algorithm);
  if (spec.simulation_budget == 0)
    throw std::invalid_argument("OptDaemon: simulation_budget must be > 0");
  if (spec.resume_from_checkpoint && !is_ma_family(spec.algorithm))
    throw std::invalid_argument("OptDaemon: " + spec.algorithm + " is not checkpointable");
  if (tenants_.count(spec.tenant) == 0) {
    tenants_[spec.tenant] = 1.0;
    scheduler_.set_weight(spec.tenant, 1.0);
    if (!spec.tenant.empty())
      for (auto& [problem_name, entry] : problems_)
        entry.stack->service().register_tenant(
            spec.tenant, config_.work_dir + "/tenants/" + spec.tenant + "/" + problem_name);
  }

  auto owned = std::make_unique<Job>();
  Job* job = owned.get();
  job->id = next_job_id_++;
  job->spec = spec;
  job->checkpointable = is_ma_family(spec.algorithm);
  job->checkpoint_path = config_.work_dir + "/" + spec.name + ".ckpt";
  job->run_observer.add(&job->progress);
  if (!spec.jsonl_path.empty()) {
    job->jsonl = std::make_unique<obs::JsonlObserver>(spec.jsonl_path);
    job->run_observer.add(job->jsonl.get());
  }
  jobs_.emplace(spec.name, std::move(owned));

  if (config_.observer != nullptr) {
    obs::JobSubmitted event;
    event.job_id = job->id;
    event.name = spec.name;
    event.tenant = spec.tenant;
    event.problem = spec.problem;
    event.algorithm = spec.algorithm;
    event.seed = spec.seed;
    event.simulation_budget = spec.simulation_budget;
    config_.observer->on_job_submitted(event);
  }

  const bool resuming = spec.resume_from_checkpoint;
  set_state(*job, JobState::Running, resuming ? "resumed from checkpoint" : "started");
  job->thread = std::thread([this, job, resuming] { worker(job, resuming); });
  return job->id;
}

bool OptDaemon::pause(const std::string& name) {
  const MutexLock lock(mutex_);
  Job* job = find_job(name);
  if (job == nullptr || job->state != JobState::Running || !job->checkpointable) return false;
  job->control.request_pause();
  set_state(*job, JobState::Pausing, "pause requested");
  return true;
}

bool OptDaemon::resume(const std::string& name) {
  std::thread finished;
  {
    const MutexLock lock(mutex_);
    Job* job = find_job(name);
    if (job == nullptr || job->state != JobState::Paused) return false;
    finished = std::move(job->thread);  // the paused segment's thread has exited
    job->control.clear();
    set_state(*job, JobState::Running, "resumed");
    job->thread = std::thread([this, job] { worker(job, true); });
  }
  if (finished.joinable()) finished.join();
  return true;
}

bool OptDaemon::kill(const std::string& name) {
  const MutexLock lock(mutex_);
  Job* job = find_job(name);
  if (job == nullptr || is_terminal(job->state)) return false;
  job->control.request_kill();
  if (job->state == JobState::Paused) {
    // No live thread to honor the signal — the job dies in place; its
    // checkpoint stays on disk (a killed job is not resumable through the
    // daemon, but the artifact is preserved for post-mortems).
    set_state(*job, JobState::Killed, "killed while paused");
    emit_finished(*job);
  } else if (job->state != JobState::Killing) {
    set_state(*job, JobState::Killing, "kill requested");
  }
  return true;
}

JobStatus OptDaemon::wait(const std::string& name) {
  MutexLock lock(mutex_);
  Job* job = find_job(name);
  if (job == nullptr) throw std::invalid_argument("OptDaemon: unknown job: " + name);
  state_cv_.wait(lock, [job] { return !is_active(job->state); });
  return status_locked(*job);
}

JobStatus OptDaemon::status(const std::string& name) const {
  const MutexLock lock(mutex_);
  const Job* job = find_job(name);
  if (job == nullptr) throw std::invalid_argument("OptDaemon: unknown job: " + name);
  return status_locked(*job);
}

std::vector<JobStatus> OptDaemon::jobs() const {
  const MutexLock lock(mutex_);
  std::vector<JobStatus> out;
  out.reserve(jobs_.size());
  for (const auto& [name, job] : jobs_) out.push_back(status_locked(*job));
  std::sort(out.begin(), out.end(),
            [](const JobStatus& a, const JobStatus& b) { return a.id < b.id; });
  return out;
}

eval::EvalService& OptDaemon::service(const std::string& problem) {
  const MutexLock lock(mutex_);
  const auto it = problems_.find(problem);
  if (it == problems_.end()) throw std::invalid_argument("OptDaemon: unknown problem: " + problem);
  return it->second.stack->service();
}

OptDaemon::Job* OptDaemon::find_job(const std::string& name) const {
  const auto it = jobs_.find(name);
  return it == jobs_.end() ? nullptr : it->second.get();
}

JobStatus OptDaemon::status_locked(const Job& job) const {
  JobStatus out;
  out.id = job.id;
  out.spec = job.spec;
  out.state = job.state;
  out.error = job.error;
  job.progress.snapshot(out);
  return out;
}

void OptDaemon::set_state(Job& job, JobState to, const std::string& reason) {
  const JobState from = job.state;
  job.state = to;
  if (config_.observer != nullptr) {
    obs::JobStateChanged event;
    event.job_id = job.id;
    event.name = job.spec.name;
    event.from = to_string(from);
    event.to = to_string(to);
    event.reason = reason;
    config_.observer->on_job_state_changed(event);
  }
  state_cv_.notify_all();
}

void OptDaemon::emit_finished(Job& job) {
  if (job.finished_emitted) return;
  job.finished_emitted = true;
  if (config_.observer == nullptr) return;
  const JobStatus status = status_locked(job);
  obs::JobFinished event;
  event.job_id = job.id;
  event.name = job.spec.name;
  event.tenant = job.spec.tenant;
  event.state = to_string(job.state);
  event.simulations = status.simulations;
  event.best_fom = status.best_fom;
  event.feasible = status.feasible;
  event.wall_seconds = status.wall_seconds;
  event.counters = status.counters;
  config_.observer->on_job_finished(event);
}

void OptDaemon::worker(Job* job, bool resuming) {
  // Pool workers resolve their namespace from the request, not this scope —
  // the scope binds the tenant for cache lookups and admission accounting on
  // the job's driving thread (every evaluate entry point reads it).
  const eval::ScopedTenant scope(job->spec.tenant);
  try {
    run_segment(*job, resuming);
  } catch (const std::exception& e) {
    const MutexLock lock(mutex_);
    job->error = e.what();
    set_state(*job, JobState::Failed, "exception");
    emit_finished(*job);
  }
}

void OptDaemon::run_segment(Job& job, bool resuming) {
  const ckt::SizingProblem* inner = nullptr;
  eval::EvalService* service = nullptr;
  {
    const MutexLock lock(mutex_);
    ProblemEntry& entry = problems_.at(job.spec.problem);
    inner = entry.problem;
    service = &entry.stack->service();
  }

  core::RunOptions options;
  options.seed = job.spec.seed;
  options.simulation_budget = job.spec.simulation_budget;
  options.observer = &job.run_observer;
  options.control = &job.control;

  core::RunHistory history;
  if (!resuming) {
    // Same protocol as a bare run: X_init from Rng(seed), FoM reference fit
    // on the initial metrics. Routed through the service, the results are
    // identical (cache hits return the stored metrics verbatim), so the
    // daemon trajectory is bit-identical to a same-seed bare run.
    Rng rng(job.spec.seed);
    auto initial = core::sample_initial_set(*service, job.spec.initial_samples, rng);
    std::vector<linalg::Vec> rows;
    rows.reserve(initial.size());
    for (const auto& record : initial) rows.push_back(record.metrics);
    const auto fom = ckt::FomEvaluator::fit_reference(*inner, rows);
    const auto optimizer = make_optimizer(job.spec, job.checkpoint_path);
    history = optimizer->run(*service, initial, fom, options);
  } else {
    // The checkpoint carries the initial records, so the FoM reference is
    // rebuilt from the exact rows the original segment fit it on.
    const core::RunCheckpoint checkpoint = core::load_checkpoint(job.checkpoint_path);
    std::vector<linalg::Vec> rows;
    rows.reserve(checkpoint.history.num_initial);
    for (std::size_t i = 0;
         i < checkpoint.history.num_initial && i < checkpoint.history.records.size(); ++i)
      rows.push_back(checkpoint.history.records[i].metrics);
    const auto fom = ckt::FomEvaluator::fit_reference(*inner, rows);
    core::MaOptimizer optimizer(ma_config_for(job.spec, job.checkpoint_path));
    history = optimizer.resume(*service, checkpoint, fom, options);
  }

  const MutexLock lock(mutex_);
  if (job.control.current() == core::RunControl::Signal::Kill ||
      (history.aborted && history.abort_reason == "killed")) {
    set_state(job, JobState::Killed, "killed");
    emit_finished(job);
  } else if (history.aborted) {
    job.error = history.abort_reason;
    set_state(job, JobState::Failed, history.abort_reason);
    emit_finished(job);
  } else if (history.simulations_used() >= job.spec.simulation_budget) {
    set_state(job, JobState::Done, "budget complete");
    emit_finished(job);
  } else {
    // Stopped early without abort: the pause yield point checkpointed and
    // broke out of the loop.
    set_state(job, JobState::Paused, "checkpointed");
  }
}

}  // namespace maopt::serve
