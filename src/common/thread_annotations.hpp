// Compile-time concurrency annotations + the annotated mutex the whole tree
// locks with.
//
// Two halves:
//
//   1. Clang thread-safety-analysis attribute macros (MAOPT_CAPABILITY,
//      MAOPT_GUARDED_BY, MAOPT_REQUIRES, ...) in the style of abseil's
//      thread_annotations.h. Under Clang with -Wthread-safety (cmake
//      -DMAOPT_THREAD_SAFETY=ON) every lock acquisition, guarded-member
//      access, and lock-order annotation is verified at compile time, on
//      every build, for every file — not just the interleavings a TSan run
//      happens to see. Under other compilers the macros expand to nothing,
//      so they cost exactly zero in any release build.
//
//   2. maopt::Mutex / maopt::MutexLock / maopt::CondVar — thin, annotated,
//      zero-overhead wrappers over std::mutex / scoped locking /
//      std::condition_variable_any. Raw std::mutex cannot carry capability
//      attributes, so the repo-wide rule (enforced by tools/maopt_lint.py,
//      check `raw-mutex`) is: every lock in src/ goes through these types.
//      Lock() and unlock() are inline forwards; the wrapper adds no state
//      (static_assert'd below) and no indirection.
//
// Also home to MAOPT_HOT: a marker for allocation-free hot functions
// (Newton loop, Adam step, GEMM/LU kernels). It expands to
// __attribute__((hot)) where supported, and tools/maopt_lint.py (check
// `hot-alloc`) statically rejects heap allocation inside any function so
// marked.
//
// The lock hierarchy itself (which mutex may be held while acquiring which)
// is documented in DESIGN.md ("Lock hierarchy"); MAOPT_ACQUIRED_BEFORE /
// MAOPT_ACQUIRED_AFTER encode the cross-class edges where they matter.
#pragma once

#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Attribute macros. Guarded by __has_attribute so they light up under any
// compiler implementing the analysis (Clang) and vanish elsewhere (GCC).
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#define MAOPT_THREAD_ANNOTATION_(x) __has_attribute(x)
#else
#define MAOPT_THREAD_ANNOTATION_(x) 0
#endif

#if MAOPT_THREAD_ANNOTATION_(capability)
#define MAOPT_CAPABILITY(x) __attribute__((capability(x)))
#else
#define MAOPT_CAPABILITY(x)
#endif

#if MAOPT_THREAD_ANNOTATION_(scoped_lockable)
#define MAOPT_SCOPED_CAPABILITY __attribute__((scoped_lockable))
#else
#define MAOPT_SCOPED_CAPABILITY
#endif

#if MAOPT_THREAD_ANNOTATION_(guarded_by)
#define MAOPT_GUARDED_BY(x) __attribute__((guarded_by(x)))
#else
#define MAOPT_GUARDED_BY(x)
#endif

#if MAOPT_THREAD_ANNOTATION_(pt_guarded_by)
#define MAOPT_PT_GUARDED_BY(x) __attribute__((pt_guarded_by(x)))
#else
#define MAOPT_PT_GUARDED_BY(x)
#endif

#if MAOPT_THREAD_ANNOTATION_(acquire_capability)
#define MAOPT_ACQUIRE(...) __attribute__((acquire_capability(__VA_ARGS__)))
#else
#define MAOPT_ACQUIRE(...)
#endif

#if MAOPT_THREAD_ANNOTATION_(release_capability)
#define MAOPT_RELEASE(...) __attribute__((release_capability(__VA_ARGS__)))
#else
#define MAOPT_RELEASE(...)
#endif

#if MAOPT_THREAD_ANNOTATION_(try_acquire_capability)
#define MAOPT_TRY_ACQUIRE(...) __attribute__((try_acquire_capability(__VA_ARGS__)))
#else
#define MAOPT_TRY_ACQUIRE(...)
#endif

#if MAOPT_THREAD_ANNOTATION_(requires_capability)
#define MAOPT_REQUIRES(...) __attribute__((requires_capability(__VA_ARGS__)))
#else
#define MAOPT_REQUIRES(...)
#endif

#if MAOPT_THREAD_ANNOTATION_(locks_excluded)
#define MAOPT_EXCLUDES(...) __attribute__((locks_excluded(__VA_ARGS__)))
#else
#define MAOPT_EXCLUDES(...)
#endif

#if MAOPT_THREAD_ANNOTATION_(acquired_before)
#define MAOPT_ACQUIRED_BEFORE(...) __attribute__((acquired_before(__VA_ARGS__)))
#else
#define MAOPT_ACQUIRED_BEFORE(...)
#endif

#if MAOPT_THREAD_ANNOTATION_(acquired_after)
#define MAOPT_ACQUIRED_AFTER(...) __attribute__((acquired_after(__VA_ARGS__)))
#else
#define MAOPT_ACQUIRED_AFTER(...)
#endif

#if MAOPT_THREAD_ANNOTATION_(assert_capability)
#define MAOPT_ASSERT_CAPABILITY(x) __attribute__((assert_capability(x)))
#else
#define MAOPT_ASSERT_CAPABILITY(x)
#endif

#if MAOPT_THREAD_ANNOTATION_(lock_returned)
#define MAOPT_RETURN_CAPABILITY(x) __attribute__((lock_returned(x)))
#else
#define MAOPT_RETURN_CAPABILITY(x)
#endif

#if MAOPT_THREAD_ANNOTATION_(no_thread_safety_analysis)
#define MAOPT_NO_THREAD_SAFETY_ANALYSIS __attribute__((no_thread_safety_analysis))
#else
#define MAOPT_NO_THREAD_SAFETY_ANALYSIS
#endif

// MAOPT_HOT — allocation-free hot-function marker. Placement (enforced by
// convention and readable by tools/maopt_lint.py): immediately before the
// return type of the function *definition*. The lint check `hot-alloc`
// rejects `new`, malloc-family calls, make_unique/make_shared, and growing
// container calls (push_back, resize, reserve, ...) inside the marked body;
// a cold-start sizing line can opt out with `// maopt-lint: allow(hot-alloc)`.
#if defined(__GNUC__) || defined(__clang__)
#define MAOPT_HOT __attribute__((hot))
#else
#define MAOPT_HOT
#endif

namespace maopt {

// ---------------------------------------------------------------------------
// Annotated synchronization primitives.
// ---------------------------------------------------------------------------

/// std::mutex with the `mutex` capability attached. Same size, same cost:
/// lock()/unlock()/try_lock() are inline forwards the optimizer collapses to
/// the underlying pthread calls (asserted by MutexBench in
/// tests/common/test_thread_annotations.cpp).
class MAOPT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MAOPT_ACQUIRE() { m_.lock(); }
  void unlock() MAOPT_RELEASE() { m_.unlock(); }
  bool try_lock() MAOPT_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "maopt::Mutex must add no state over std::mutex");

/// Scoped lock over a Mutex — the annotated replacement for
/// std::lock_guard / std::unique_lock. Constructed locked; unlock()/lock()
/// exist for condition-variable waits and for releasing early.
class MAOPT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) MAOPT_ACQUIRE(mutex) : mutex_(&mutex), held_(true) {
    mutex_->lock();
  }
  ~MutexLock() MAOPT_RELEASE() {
    if (held_) mutex_->unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  MutexLock(MutexLock&&) = delete;
  MutexLock& operator=(MutexLock&&) = delete;

  /// Releases the mutex before scope end (idempotent is a contract
  /// violation: calling unlock() twice is caught by the analysis, not at
  /// runtime — mirror std::unique_lock discipline).
  void unlock() MAOPT_RELEASE() {
    mutex_->unlock();
    held_ = false;
  }
  /// Re-acquires after an unlock() (used around blocking joins).
  void lock() MAOPT_ACQUIRE() {
    mutex_->lock();
    held_ = true;
  }

  bool owns_lock() const { return held_; }

 private:
  friend class CondVar;
  Mutex* mutex_;
  bool held_;
};

/// Condition variable bound to maopt::Mutex. Implemented over
/// std::condition_variable_any waiting directly on the Mutex (which is
/// BasicLockable); wait() takes the scoped MutexLock so the capability
/// bookkeeping stays with the caller's scope.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`'s mutex and waits; re-acquired on return.
  template <typename Predicate>
  void wait(MutexLock& lock, Predicate pred) {
    cv_.wait(*lock.mutex_, std::move(pred));
  }

  /// Timed predicate wait; returns pred() at wake-up (false on timeout).
  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(MutexLock& lock, const std::chrono::duration<Rep, Period>& dur, Predicate pred) {
    return cv_.wait_for(*lock.mutex_, dur, std::move(pred));
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace maopt
