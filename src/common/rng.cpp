#include "common/rng.hpp"

#include <cmath>

namespace maopt {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t stream) {
  std::uint64_t x = master ^ (0xD1B54A32D192ED03ULL * (stream + 1));
  return splitmix64(x);
}

Rng::Rng(std::uint64_t seed) {
  // Expand the seed through splitmix64 per the xoshiro authors' guidance;
  // guards against the all-zero state.
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return lo + static_cast<std::int64_t>(next());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~std::uint64_t{0} / span) * span;
  std::uint64_t r = next();
  while (r >= limit) r = next();
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(6.283185307179586 * u2);
  has_spare_ = true;
  return mag * std::cos(6.283185307179586 * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  // Floyd's algorithm: O(k) expected work, no O(n) scratch.
  std::vector<std::size_t> picked;
  picked.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(j)));
    bool seen = false;
    for (const auto p : picked) {
      if (p == t) {
        seen = true;
        break;
      }
    }
    picked.push_back(seen ? j : t);
  }
  return picked;
}

}  // namespace maopt
