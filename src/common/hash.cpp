#include "common/hash.hpp"

#include <bit>
#include <cmath>

#include "common/check.hpp"

namespace maopt {

namespace {
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;
}  // namespace

std::uint64_t hash_bytes(const void* data, std::size_t len, std::uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t hash_u64(std::uint64_t value, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xFFU;
    h *= kFnvPrime;
  }
  return h;
}

std::int64_t quantize_coord(double v, double epsilon) {
  MAOPT_CHECK(!std::isnan(v), "quantize_coord: NaN coordinate cannot be content-addressed");
  if (epsilon <= 0.0) {
    // Exact addressing: the IEEE bit pattern, with -0.0 canonicalized so the
    // two zeros (which compare equal) share an address.
    if (v == 0.0) v = 0.0;
    return static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(v));
  }
  const double q = v / epsilon;
  // Saturate instead of invoking the UB of an out-of-range llround.
  constexpr double kMax = 9.2233720368547672e18;  // just below 2^63 - 1
  if (q >= kMax) return INT64_MAX;
  if (q <= -kMax) return INT64_MIN;
  return std::llround(q);
}

std::uint64_t hash_design(std::span<const double> x, double epsilon, std::uint64_t seed) {
  std::uint64_t h = hash_u64(static_cast<std::uint64_t>(x.size()), seed);
  for (const double v : x)
    h = hash_u64(static_cast<std::uint64_t>(quantize_coord(v, epsilon)), h);
  return h;
}

}  // namespace maopt
