// Deterministic random number generation for reproducible experiments.
//
// All stochastic components of the library (initial sampling, minibatch
// selection, actor initialization, near-sampling) draw from an explicitly
// seeded Rng so that a (seed, algorithm, problem) triple fully determines a
// run. The engine is xoshiro256**, which is fast, has a 256-bit state and
// passes BigCrush; distributions are implemented on top of it directly so
// results are identical across standard-library implementations.
#pragma once

#include <cstdint>
#include <vector>

namespace maopt {

/// Counter-based splittable seeding: derive independent stream seeds from a
/// master seed (used to give each optimizer run / actor its own stream).
std::uint64_t derive_seed(std::uint64_t master, std::uint64_t stream);

/// xoshiro256** engine with inline distribution helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller (cached spare).
  double normal();
  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);

  /// k distinct indices drawn uniformly from [0, n) (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace maopt
