#include "common/thread_pool.hpp"

#include <algorithm>

namespace maopt {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      cv_.wait(lock, [this]() MAOPT_REQUIRES(mutex_) { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  MAOPT_CHECK(static_cast<bool>(fn), "ThreadPool::parallel_for: null function");
  // Chunked dispatch: one task per worker covering a contiguous index range,
  // so tiny per-index bodies pay queue/future overhead once per chunk rather
  // than once per index.
  const std::size_t chunks = std::min(n, workers_.size());
  const std::size_t per_chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * per_chunk;
    const std::size_t hi = std::min(n, lo + per_chunk);
    if (lo >= hi) break;
    futures.push_back(submit([&fn, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  // Drain EVERY chunk before propagating a failure: the tasks capture `fn`
  // by reference, so returning (or throwing) while any chunk is still
  // queued or running would leave workers touching a dead object. The first
  // exception (in chunk order, which is deterministic) wins; later ones are
  // swallowed after their chunks finish.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace maopt
