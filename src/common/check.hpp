// Contract-check layer shared by every maopt library.
//
// Two tiers, chosen by cost at the call site:
//
//   MAOPT_CHECK(cond, msg)   Always compiled in. For API misuse on cold
//                            paths (shape mismatches, empty populations,
//                            invalid configs): throws ContractViolation,
//                            which derives from std::invalid_argument so
//                            pre-existing catch sites keep working.
//
//   MAOPT_DCHECK(cond, msg)  Compiled in Debug builds and whenever
//                            MAOPT_CHECKED is defined (cmake
//                            -DMAOPT_CHECKED=ON). For hot-loop invariants
//                            (per-element bounds, borrowed-buffer
//                            generations) where an always-on branch would
//                            cost real throughput: prints the failed
//                            condition and aborts, so it is usable from
//                            noexcept contexts and shows up in gtest death
//                            tests.
//
// MAOPT_DCHECK_ENABLED is 1 when MAOPT_DCHECK is active, so tests can gate
// death-test expectations on the build flavor.
#pragma once

#include <stdexcept>
#include <string>

namespace maopt {

/// Thrown by MAOPT_CHECK. Derives from std::invalid_argument because the
/// checks it replaced threw that type; callers catching the standard type
/// continue to work.
class ContractViolation : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {

/// Cold path of MAOPT_CHECK: formats "<msg> (check `cond` failed at
/// file:line)" and throws ContractViolation.
[[noreturn]] void contract_fail(const char* cond, const char* file, int line,
                                const std::string& msg);

/// Cold path of MAOPT_DCHECK: writes the failure to stderr and aborts.
[[noreturn]] void dcheck_fail(const char* cond, const char* file, int line,
                              const char* msg) noexcept;

}  // namespace detail
}  // namespace maopt

#define MAOPT_CHECK(cond, msg)                                            \
  (static_cast<bool>(cond)                                                \
       ? void(0)                                                          \
       : ::maopt::detail::contract_fail(#cond, __FILE__, __LINE__, (msg)))

#if defined(MAOPT_CHECKED) || !defined(NDEBUG)
#define MAOPT_DCHECK_ENABLED 1
#define MAOPT_DCHECK(cond, msg)                                         \
  (static_cast<bool>(cond)                                              \
       ? void(0)                                                        \
       : ::maopt::detail::dcheck_fail(#cond, __FILE__, __LINE__, (msg)))
#else
#define MAOPT_DCHECK_ENABLED 0
#define MAOPT_DCHECK(cond, msg) static_cast<void>(0)
#endif
