// Fixed-size thread pool used to run the N_act actor trainings and SPICE
// simulations of one MA-Opt iteration concurrently (the paper implements
// this with N_act OS processes; threads give the same parallel structure).
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/thread_annotations.hpp"

namespace maopt {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; 0 is clamped to 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the returned future yields its result (or exception).
  /// Submitting to a pool whose destructor has begun is a contract
  /// violation (the task could never run).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      const MutexLock lock(mutex_);
      MAOPT_CHECK(!stop_, "ThreadPool::submit: pool is shutting down");
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
  /// Indices are dispatched as ceil(n / workers) contiguous chunks (one task
  /// per worker). Exceptions from tasks are rethrown (the first encountered,
  /// in chunk order); a throwing index skips the remainder of its own chunk
  /// only. All chunks — including ones that threw — are waited on before
  /// this returns or rethrows, so `fn` and everything it captures are
  /// guaranteed unreferenced afterwards.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::queue<std::function<void()>> tasks_ MAOPT_GUARDED_BY(mutex_);
  CondVar cv_;
  bool stop_ MAOPT_GUARDED_BY(mutex_) = false;
};

}  // namespace maopt
