#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <ctime>
#include <cstdio>

#include "common/thread_annotations.hpp"

namespace maopt {
namespace {
std::atomic<LogLevel> g_level{LogLevel::Info};
Mutex g_mutex;  // serializes stderr lines; leaf lock (nothing acquired under it)

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  const MutexLock lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

Stopwatch::Stopwatch() { reset(); }

void Stopwatch::reset() {
  start_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now().time_since_epoch())
                  .count();
}

namespace {
long long thread_cpu_ns() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<long long>(ts.tv_sec) * 1000000000LL + ts.tv_nsec;
}
}  // namespace

ThreadCpuTimer::ThreadCpuTimer() { reset(); }

void ThreadCpuTimer::reset() { start_ns_ = thread_cpu_ns(); }

double ThreadCpuTimer::elapsed_seconds() const {
  return static_cast<double>(thread_cpu_ns() - start_ns_) * 1e-9;
}

double Stopwatch::elapsed_seconds() const {
  const long long now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now().time_since_epoch())
                            .count();
  return static_cast<double>(now - start_ns_) * 1e-9;
}

}  // namespace maopt
