#include "common/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace maopt {

std::string CliArgs::canonical(const std::string& name) {
  std::string out = name;
  std::replace(out.begin(), out.end(), '_', '-');
  return out;
}

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      flags_[canonical(name.substr(0, eq))] = name.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[canonical(name)] = argv[++i];
    } else {
      flags_[canonical(name)] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const { return flags_.count(canonical(name)) > 0; }

std::string CliArgs::get(const std::string& name, const std::string& fallback) const {
  const auto it = flags_.find(canonical(name));
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = flags_.find(canonical(name));
  return it == flags_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(canonical(name));
  // Generic CLI doubles (rates, weights) stay plain C doubles; flags that
  // should accept "5k"/"2meg" call spice::parse_spice_value at the call site.
  return it == flags_.end() ? fallback
                            : std::strtod(it->second.c_str(), nullptr);  // maopt-lint: allow(number-parse)
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(canonical(name));
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace maopt
