// Minimal command-line flag parsing for the bench/experiment binaries.
// Supports `--name value`, `--name=value` and boolean `--flag` forms.
//
// Flag names are canonicalized: underscores become dashes at parse time and
// at every lookup, so `--sigma_vth` and `--sigma-vth` are the same flag (the
// documented spelling is the dashed one; the underscore form exists for
// backward compatibility with older scripts).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace maopt {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  /// Positional (non-flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// The canonical spelling of a flag name: `_` -> `-`.
  static std::string canonical(const std::string& name);

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace maopt
