// Leveled logging to stderr with a global threshold. The optimizers log
// per-iteration progress at Debug; experiment harnesses log at Info.
#pragma once

#include <optional>
#include <sstream>
#include <string>

namespace maopt {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();
void log_message(LogLevel level, const std::string& msg);

namespace detail {
/// One log statement. Formatting is lazy: below the global threshold the
/// stream is never materialized and every operator<< is a no-op, so hot-path
/// log_debug() calls cost a level check instead of ostringstream traffic.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {
    if (level >= log_level()) stream_.emplace();
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  LogLine(LogLine&&) = delete;
  LogLine& operator=(LogLine&&) = delete;
  ~LogLine() {
    if (stream_.has_value()) log_message(level_, stream_->str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (stream_.has_value()) *stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::optional<std::ostringstream> stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::Debug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::Info); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::Warn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::Error); }

/// RAII wall-clock stopwatch (seconds).
class Stopwatch {
 public:
  Stopwatch();
  double elapsed_seconds() const;
  void reset();

 private:
  long long start_ns_;
};

/// CPU-time stopwatch scoped to the calling thread — used to attribute
/// training vs simulation cost inside parallel actor workers without the
/// overcounting a wall clock suffers when threads share cores.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer();
  double elapsed_seconds() const;
  void reset();

 private:
  long long start_ns_;
};

}  // namespace maopt
