#include "common/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace maopt::detail {

void contract_fail(const char* cond, const char* file, int line, const std::string& msg) {
  std::string what = msg;
  what += " (check `";
  what += cond;
  what += "` failed at ";
  what += file;
  what += ":";
  what += std::to_string(line);
  what += ")";
  throw ContractViolation(what);
}

void dcheck_fail(const char* cond, const char* file, int line, const char* msg) noexcept {
  std::fprintf(stderr, "MAOPT_DCHECK failed: %s — `%s` at %s:%d\n", msg, cond, file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace maopt::detail
