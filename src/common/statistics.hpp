// Small descriptive-statistics helpers used by the experiment harnesses
// (Table II/IV/VI report means over 10 runs; Fig. 5 reports mean FoM
// trajectories on a log scale).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace maopt {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  ///< unbiased (n-1); 0 for n<2
double stddev(std::span<const double> xs);
double median(std::span<const double> xs);
/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> xs, double p);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Element-wise mean over equal-length rows (used for averaged trajectories).
std::vector<double> rowwise_mean(const std::vector<std::vector<double>>& rows);

}  // namespace maopt
