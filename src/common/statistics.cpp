#include "common/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace maopt {

double mean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("mean: empty input");
  double s = 0.0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (const double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double min_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("min_of: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("max_of: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

std::vector<double> rowwise_mean(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return {};
  const std::size_t n = rows.front().size();
  for (const auto& r : rows)
    if (r.size() != n) throw std::invalid_argument("rowwise_mean: ragged rows");
  std::vector<double> out(n, 0.0);
  for (const auto& r : rows)
    for (std::size_t i = 0; i < n; ++i) out[i] += r[i];
  for (auto& v : out) v /= static_cast<double>(rows.size());
  return out;
}

}  // namespace maopt
