// Stable content hashing for design vectors — the addressing scheme of the
// evaluation-result cache (src/eval) and the duplicate-design screen of the
// elite set.
//
// Guarantees:
//   * Platform-stable: the hash is defined purely in terms of IEEE-754 bit
//     patterns and 64-bit integer arithmetic (FNV-1a), so the same design
//     hashes identically across compilers, architectures and runs — the
//     property that lets an on-disk result journal be reused cross-run.
//   * Quantization-aware: with epsilon > 0 each coordinate is bucketed to
//     round(x / epsilon) before hashing, so designs within epsilon/2 of the
//     same grid point share a hash. epsilon <= 0 hashes exact bit patterns
//     (after canonicalizing -0.0 to +0.0 so the two zeros coincide).
//   * NaN-hostile: NaN coordinates are a contract violation — a NaN design
//     cannot be content-addressed (NaN != NaN) and never reaches a cache key
//     in a correct run.
#pragma once

#include <cstdint>
#include <span>

namespace maopt {

/// FNV-1a offset basis — the default seed of the hashes below.
inline constexpr std::uint64_t kHashSeed = 0xCBF29CE484222325ULL;

/// Folds `len` raw bytes into `seed` (FNV-1a).
std::uint64_t hash_bytes(const void* data, std::size_t len, std::uint64_t seed = kHashSeed);

/// Folds one 64-bit word into `seed` (FNV-1a over its 8 bytes, little-endian
/// byte order regardless of host endianness).
std::uint64_t hash_u64(std::uint64_t value, std::uint64_t seed);

/// Quantizes one coordinate: round-half-away-from-zero of v / epsilon for
/// epsilon > 0 (saturating at the int64 range so huge magnitudes cannot
/// overflow into UB), the canonicalized bit pattern for epsilon <= 0.
/// NaN input is a contract violation.
std::int64_t quantize_coord(double v, double epsilon);

/// Hash of a whole design vector under the given quantization epsilon. The
/// length is folded in first, so a prefix never collides with its extension.
std::uint64_t hash_design(std::span<const double> x, double epsilon = 0.0,
                          std::uint64_t seed = kHashSeed);

}  // namespace maopt
