// Optimization spec files: the half of a deck-defined problem that SPICE
// syntax cannot express — which .params are designable (and their bounds),
// what to minimize, and which measures are constrained.
//
// Line-oriented format ('#' or '*' starts a comment):
//
//   name five_transistor_ota
//   param W1    lower=1u  upper=100u
//   param MTAIL lower=1   upper=8     integer
//   let   power_mw {power * 1e3}
//   minimize power_mw [weight=0.01] [unit=mW]
//   constraint gain >= 30   [weight=1] [unit=dB]
//   constraint {vout - 0.9} <= 0.4
//
// `minimize` and constraint left-hand sides are either a bare name (a
// .measure result or a `let`) or a braced expression over them; bounds and
// numeric values use SPICE suffixes ("2meg"). Exactly one `minimize` is
// required.
#pragma once

#include <string>
#include <vector>

#include "circuits/sizing_problem.hpp"
#include "deck/expression.hpp"

namespace maopt::deck {

struct DesignParam {
  std::string name;  ///< upper-cased .param name in the deck
  double lower = 0.0;
  double upper = 0.0;
  bool integer = false;
};

struct SpecConstraint {
  std::string name;  ///< metric name (lhs identifier, or "c<k>" for expressions)
  std::string unit;
  Expr expr;
  ckt::ConstraintKind kind;
  double bound = 0.0;
  double weight = 1.0;
};

struct DeckSpec {
  std::string problem_name;
  std::vector<DesignParam> params;
  std::vector<std::pair<std::string, Expr>> lets;  ///< declaration order
  std::string objective_name = "objective";
  std::string objective_unit;
  double objective_weight = 1.0;
  Expr objective;
  std::vector<SpecConstraint> constraints;
};

/// Parses a spec file; throws spice::ParseError with file context.
DeckSpec parse_spec_file(const std::string& path);
DeckSpec parse_spec_text(const std::string& text, const std::string& virtual_path = "<spec>");

/// Default spec path for a deck: same stem, ".spec" extension
/// ("decks/foo.cir" -> "decks/foo.spec").
std::string default_spec_path(const std::string& deck_path);

}  // namespace maopt::deck
