#include "deck/expression.hpp"

#include <cctype>
#include <cstdio>
#include <stdexcept>
#include <utility>
#include <vector>

#include "spice/parser.hpp"

namespace maopt::deck {

struct Expr::Node {
  enum class Kind { Number, Param, Add, Sub, Mul, Div, Neg };
  Kind kind;
  double value = 0.0;                  // Number
  std::string name;                    // Param (upper-cased)
  std::shared_ptr<const Node> lhs, rhs;
};

namespace {

using Node = Expr::Node;
using NodePtr = std::shared_ptr<const Node>;

NodePtr make_number(double v) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::Number;
  n->value = v;
  return n;
}

NodePtr make_param(std::string name) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::Param;
  n->name = std::move(name);
  return n;
}

NodePtr make_op(Node::Kind kind, NodePtr lhs, NodePtr rhs) {
  auto n = std::make_shared<Node>();
  n->kind = kind;
  n->lhs = std::move(lhs);
  n->rhs = std::move(rhs);
  return n;
}

std::string upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

/// Recursive-descent parser over the raw text (no separate lexer pass; the
/// token boundaries are simple enough to scan in place).
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  NodePtr parse() {
    NodePtr e = expr();
    skip_space();
    if (pos_ != text_.size()) fail("unexpected '" + std::string(1, text_[pos_]) + "'");
    return e;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::invalid_argument("expression '" + text_ + "' at position " +
                                std::to_string(pos_) + ": " + message);
  }

  void skip_space() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool eat(char c) {
    skip_space();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char peek() {
    skip_space();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  NodePtr expr() {
    NodePtr lhs = term();
    while (true) {
      if (eat('+'))
        lhs = make_op(Node::Kind::Add, lhs, term());
      else if (eat('-'))
        lhs = make_op(Node::Kind::Sub, lhs, term());
      else
        return lhs;
    }
  }

  NodePtr term() {
    NodePtr lhs = unary();
    while (true) {
      if (eat('*'))
        lhs = make_op(Node::Kind::Mul, lhs, unary());
      else if (eat('/'))
        lhs = make_op(Node::Kind::Div, lhs, unary());
      else
        return lhs;
    }
  }

  NodePtr unary() {
    if (eat('-')) return make_op(Node::Kind::Neg, unary(), nullptr);
    return primary();
  }

  NodePtr primary() {
    const char c = peek();
    if (c == '(') {
      eat('(');
      NodePtr inner = expr();
      if (!eat(')')) fail("expected ')'");
      return inner;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') return number();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return identifier();
    fail(c == '\0' ? std::string("unexpected end of expression")
                   : "unexpected '" + std::string(1, c) + "'");
  }

  /// Number with optional exponent and engineering suffix: "1.5k", "2meg",
  /// "1e-9", "3E6Hz". The whole token goes through parse_spice_value so the
  /// suffix semantics are identical to element cards.
  NodePtr number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.'))
      ++pos_;
    // Exponent: e/E followed by an optional sign and at least one digit.
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      std::size_t p = pos_ + 1;
      if (p < text_.size() && (text_[p] == '+' || text_[p] == '-')) ++p;
      if (p < text_.size() && std::isdigit(static_cast<unsigned char>(text_[p]))) {
        pos_ = p;
        while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
      }
    }
    // Trailing suffix/unit letters belong to the number ("2meg", "10pF").
    while (pos_ < text_.size() && std::isalpha(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    const std::string token = text_.substr(start, pos_ - start);
    try {
      return make_number(spice::parse_spice_value(token));
    } catch (const std::invalid_argument& e) {
      pos_ = start;
      fail(e.what());
    }
  }

  NodePtr identifier() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() && (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                                   text_[pos_] == '_'))
      ++pos_;
    return make_param(upper(text_.substr(start, pos_ - start)));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

double eval_node(const Node& n, const ParamEnv& env) {
  switch (n.kind) {
    case Node::Kind::Number: return n.value;
    case Node::Kind::Param: {
      const auto it = env.find(n.name);
      if (it == env.end())
        throw std::invalid_argument("unknown parameter '" + n.name + "' in expression");
      return it->second;
    }
    case Node::Kind::Add: return eval_node(*n.lhs, env) + eval_node(*n.rhs, env);
    case Node::Kind::Sub: return eval_node(*n.lhs, env) - eval_node(*n.rhs, env);
    case Node::Kind::Mul: return eval_node(*n.lhs, env) * eval_node(*n.rhs, env);
    case Node::Kind::Div: return eval_node(*n.lhs, env) / eval_node(*n.rhs, env);
    case Node::Kind::Neg: return -eval_node(*n.lhs, env);
  }
  throw std::logic_error("unreachable expression kind");
}

void collect_node(const Node& n, std::set<std::string>& out) {
  if (n.kind == Node::Kind::Param) out.insert(n.name);
  if (n.lhs) collect_node(*n.lhs, out);
  if (n.rhs) collect_node(*n.rhs, out);
}

NodePtr substitute_node(const NodePtr& n, const std::map<std::string, NodePtr>& bindings) {
  if (n->kind == Node::Kind::Param) {
    const auto it = bindings.find(n->name);
    return it != bindings.end() ? it->second : n;
  }
  if (!n->lhs && !n->rhs) return n;
  NodePtr lhs = n->lhs ? substitute_node(n->lhs, bindings) : nullptr;
  NodePtr rhs = n->rhs ? substitute_node(n->rhs, bindings) : nullptr;
  if (lhs == n->lhs && rhs == n->rhs) return n;
  auto copy = std::make_shared<Node>(*n);
  copy->lhs = std::move(lhs);
  copy->rhs = std::move(rhs);
  return copy;
}

void canonical_node(const Node& n, std::string& out) {
  switch (n.kind) {
    case Node::Kind::Number: {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", n.value);
      out += buf;
      return;
    }
    case Node::Kind::Param: out += n.name; return;
    case Node::Kind::Neg:
      out += "(-";
      canonical_node(*n.lhs, out);
      out += ")";
      return;
    default: break;
  }
  const char* op = n.kind == Node::Kind::Add   ? "+"
                   : n.kind == Node::Kind::Sub ? "-"
                   : n.kind == Node::Kind::Mul ? "*"
                                               : "/";
  out += "(";
  canonical_node(*n.lhs, out);
  out += op;
  canonical_node(*n.rhs, out);
  out += ")";
}

bool constant_node(const Node& n) {
  if (n.kind == Node::Kind::Param) return false;
  if (n.lhs && !constant_node(*n.lhs)) return false;
  if (n.rhs && !constant_node(*n.rhs)) return false;
  return true;
}

}  // namespace

Expr Expr::parse(const std::string& text) {
  return Expr(Parser(text).parse(), text);
}

Expr Expr::number(double value) { return Expr(make_number(value)); }

bool Expr::is_constant() const { return root_ != nullptr && constant_node(*root_); }

double Expr::eval(const ParamEnv& env) const {
  if (!root_) throw std::invalid_argument("evaluating an empty expression");
  return eval_node(*root_, env);
}

void Expr::collect_params(std::set<std::string>& out) const {
  if (root_) collect_node(*root_, out);
}

Expr Expr::substitute(const std::map<std::string, Expr>& bindings) const {
  if (!root_ || bindings.empty()) return *this;
  std::map<std::string, NodePtr> nodes;
  for (const auto& [name, expr] : bindings)
    if (expr.root_) nodes[upper(name)] = expr.root_;
  return Expr(substitute_node(root_, nodes), source_);
}

std::string Expr::canonical() const {
  if (!root_) return "<empty>";
  std::string out;
  canonical_node(*root_, out);
  return out;
}

}  // namespace maopt::deck
