// Arithmetic expressions for deck parameters (.param W2={W1*2}) and spec
// objectives (minimize {power*1e3}).
//
// Grammar (recursive descent, left-associative):
//   expr    := term  (('+' | '-') term)*
//   term    := unary (('*' | '/') unary)*
//   unary   := '-' unary | primary
//   primary := number | identifier | '(' expr ')'
//
// Numbers use the canonical SPICE value syntax (engineering suffixes
// included) via spice::parse_spice_value — "1.5k", "2meg" and "10p" mean the
// same thing in an expression as on an element card. Identifiers reference
// parameters resolved at evaluation time against a ParamEnv.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>

namespace maopt::deck {

/// Parameter environment: upper-cased name -> value.
using ParamEnv = std::map<std::string, double>;

/// An immutable expression tree. Copies share structure (shared_ptr nodes),
/// so passing Expr by value is cheap. A default-constructed Expr is empty —
/// evaluating it throws; use empty() to test.
class Expr {
 public:
  /// Tree node, defined in expression.cpp (public so the implementation's
  /// free helper functions can name it; the type stays opaque to callers).
  struct Node;

  Expr() = default;

  /// Parses `text`; throws std::invalid_argument with a position-annotated
  /// message on malformed input.
  static Expr parse(const std::string& text);

  /// Constant expression.
  static Expr number(double value);

  bool empty() const { return root_ == nullptr; }

  /// True when the expression is a plain constant (no parameter references).
  bool is_constant() const;

  /// Evaluates against `env`; throws std::invalid_argument on an unknown
  /// parameter reference or an empty expression.
  double eval(const ParamEnv& env) const;

  /// Adds every referenced parameter name (upper-cased) to `out`.
  void collect_params(std::set<std::string>& out) const;

  /// Returns a copy with every parameter in `bindings` replaced by its bound
  /// expression (used for subcircuit instance parameters).
  Expr substitute(const std::map<std::string, Expr>& bindings) const;

  /// Deterministic serialization — identical expressions (post-parse) yield
  /// identical strings, which is what the deck content hash folds.
  std::string canonical() const;

  /// Original source text as written in the deck ("" for synthesized nodes).
  const std::string& source() const { return source_; }

 private:
  explicit Expr(std::shared_ptr<const Node> root, std::string source = {})
      : root_(std::move(root)), source_(std::move(source)) {}

  std::shared_ptr<const Node> root_;
  std::string source_;
};

}  // namespace maopt::deck
