#include "deck/spec.hpp"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "spice/parser.hpp"

namespace maopt::deck {

namespace {

using spice::ParseError;

std::string upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

/// Whitespace tokenizer keeping '{...}' groups as one token (inner text).
std::vector<std::string> tokenize(const std::string& file, int number, const std::string& text) {
  std::vector<std::string> tokens;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      tokens.push_back(cur);
      cur.clear();
    }
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '{') {
      flush();
      const auto end = text.find('}', i + 1);
      if (end == std::string::npos) throw ParseError(file, number, "unterminated '{' expression");
      tokens.push_back(text.substr(i + 1, end - i - 1));
      i = end;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      flush();
    } else {
      cur.push_back(c);
    }
  }
  flush();
  return tokens;
}

bool is_identifier(const std::string& s) {
  if (s.empty() || !(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_')) return false;
  for (const char c : s)
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) return false;
  return true;
}

double parse_number(const std::string& file, int number, const std::string& token) {
  try {
    return spice::parse_spice_value(token);
  } catch (const std::invalid_argument& e) {
    throw ParseError(file, number, e.what());
  }
}

Expr parse_expr(const std::string& file, int number, const std::string& token) {
  try {
    return Expr::parse(token);
  } catch (const std::invalid_argument& e) {
    throw ParseError(file, number, e.what());
  }
}

/// key=value options from tokens[start..] ("weight=0.01", "unit=dB", bare
/// flags like "integer" map to "1").
std::map<std::string, std::string> parse_options(const std::string& file, int number,
                                                 const std::vector<std::string>& tokens,
                                                 std::size_t start) {
  std::map<std::string, std::string> kv;
  for (std::size_t i = start; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos)
      kv[upper(tokens[i])] = "1";
    else if (eq == 0 || eq + 1 >= tokens[i].size())
      throw ParseError(file, number, "malformed option '" + tokens[i] + "'");
    else
      kv[upper(tokens[i].substr(0, eq))] = tokens[i].substr(eq + 1);
  }
  return kv;
}

}  // namespace

DeckSpec parse_spec_text(const std::string& text, const std::string& virtual_path) {
  DeckSpec spec;
  bool have_objective = false;
  std::istringstream stream(text);
  std::string raw;
  int number = 0;
  while (std::getline(stream, raw)) {
    ++number;
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw = raw.substr(0, hash);
    const auto first = raw.find_first_not_of(" \t");
    if (first == std::string::npos || raw[first] == '*') continue;
    const auto tokens = tokenize(virtual_path, number, raw);
    if (tokens.empty()) continue;
    auto err = [&](const std::string& message) -> ParseError {
      return ParseError(virtual_path, number, message);
    };
    const std::string head = upper(tokens[0]);

    if (head == "NAME") {
      if (tokens.size() != 2) throw err("name expects exactly one argument");
      spec.problem_name = tokens[1];
    } else if (head == "PARAM") {
      if (tokens.size() < 2) throw err("param expects a parameter name");
      DesignParam p;
      p.name = upper(tokens[1]);
      const auto opts = parse_options(virtual_path, number, tokens, 2);
      bool have_lower = false, have_upper = false;
      for (const auto& [key, value] : opts) {
        if (key == "LOWER") {
          p.lower = parse_number(virtual_path, number, value);
          have_lower = true;
        } else if (key == "UPPER") {
          p.upper = parse_number(virtual_path, number, value);
          have_upper = true;
        } else if (key == "INTEGER") {
          p.integer = true;
        } else {
          throw err("unknown param option '" + key + "'");
        }
      }
      if (!have_lower || !have_upper) throw err("param needs lower= and upper=");
      if (!(p.lower < p.upper))
        throw err("param " + p.name + ": lower bound must be below upper bound");
      for (const auto& existing : spec.params)
        if (existing.name == p.name) throw err("duplicate param '" + p.name + "'");
      spec.params.push_back(p);
    } else if (head == "LET") {
      if (tokens.size() != 3) throw err("let expects 'let NAME {expr}'");
      spec.lets.emplace_back(upper(tokens[1]), parse_expr(virtual_path, number, tokens[2]));
    } else if (head == "MINIMIZE") {
      if (have_objective) throw err("duplicate minimize directive");
      if (tokens.size() < 2) throw err("minimize expects a name or expression");
      have_objective = true;
      spec.objective = parse_expr(virtual_path, number, tokens[1]);
      if (is_identifier(tokens[1])) spec.objective_name = tokens[1];
      const auto opts = parse_options(virtual_path, number, tokens, 2);
      for (const auto& [key, value] : opts) {
        if (key == "WEIGHT")
          spec.objective_weight = parse_number(virtual_path, number, value);
        else if (key == "UNIT")
          spec.objective_unit = value;
        else if (key == "NAME")
          spec.objective_name = value;
        else
          throw err("unknown minimize option '" + key + "'");
      }
    } else if (head == "CONSTRAINT") {
      // constraint LHS >=|<= VALUE [weight=] [unit=] [name=]
      if (tokens.size() < 4) throw err("constraint expects 'LHS >=|<= value'");
      SpecConstraint c;
      c.expr = parse_expr(virtual_path, number, tokens[1]);
      c.name = is_identifier(tokens[1]) ? tokens[1]
                                        : "c" + std::to_string(spec.constraints.size());
      if (tokens[2] == ">=")
        c.kind = ckt::ConstraintKind::GreaterEqual;
      else if (tokens[2] == "<=")
        c.kind = ckt::ConstraintKind::LessEqual;
      else
        throw err("constraint operator must be >= or <=, got '" + tokens[2] + "'");
      c.bound = parse_number(virtual_path, number, tokens[3]);
      const auto opts = parse_options(virtual_path, number, tokens, 4);
      for (const auto& [key, value] : opts) {
        if (key == "WEIGHT")
          c.weight = parse_number(virtual_path, number, value);
        else if (key == "UNIT")
          c.unit = value;
        else if (key == "NAME")
          c.name = value;
        else
          throw err("unknown constraint option '" + key + "'");
      }
      for (const auto& existing : spec.constraints)
        if (existing.name == c.name) throw err("duplicate constraint name '" + c.name + "'");
      spec.constraints.push_back(std::move(c));
    } else {
      throw err("unknown spec directive '" + tokens[0] + "'");
    }
  }
  if (!have_objective)
    throw ParseError(virtual_path, number, "spec needs exactly one 'minimize' directive");
  if (spec.params.empty())
    throw ParseError(virtual_path, number, "spec declares no designable params");
  return spec;
}

DeckSpec parse_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError(path, 0, "cannot open spec file");
  std::ostringstream text;
  text << in.rdbuf();
  return parse_spec_text(text.str(), path);
}

std::string default_spec_path(const std::string& deck_path) {
  std::filesystem::path p(deck_path);
  p.replace_extension(".spec");
  return p.string();
}

}  // namespace maopt::deck
