#include "deck/deck_problem.hpp"

#include <cmath>
#include <cstring>
#include <filesystem>
#include <set>
#include <stdexcept>

#include "circuits/process_variation.hpp"
#include "common/check.hpp"
#include "common/hash.hpp"
#include "spice/ac_analysis.hpp"
#include "spice/dc_analysis.hpp"
#include "spice/devices.hpp"
#include "spice/measure.hpp"
#include "spice/mosfet.hpp"
#include "spice/noise_analysis.hpp"
#include "spice/tran_analysis.hpp"

namespace maopt::deck {

namespace {

using namespace maopt::spice;
using ckt::EvalResult;
using ckt::ProcessVariation;

/// Evaluates a model card onto the canonical 180 nm base model.
MosModel build_model(const ModelCard& card, const ParamEnv& env) {
  MosModel model = card.type == "NMOS" ? MosModel::nmos_180() : MosModel::pmos_180();
  for (const auto& [key, expr] : card.params) {
    const double v = expr.eval(env);
    if (key == "VTO")
      model.vth0 = v;
    else if (key == "KP")
      model.kp = v;
    else if (key == "LAMBDAL")
      model.lambda_l = v;
    else if (key == "COX")
      model.cox = v;
    else if (key == "COV")
      model.cov = v;
    else if (key == "CJW")
      model.cj_w = v;
    else if (key == "KF")
      model.kf = v;
    else if (key == "GAMMA")
      model.gamma = v;
    else if (key == "PHI")
      model.phi = v;
    else if (key == "NSS") {
      model.subthreshold = true;
      model.n_ss = v;
    } else {
      throw std::invalid_argument(card.location + ": unknown model parameter '" + key + "'");
    }
  }
  return model;
}

Waveform build_waveform(const SourceSpec& s, const ParamEnv& env) {
  switch (s.wave) {
    case SourceSpec::Wave::Dc: return Waveform::dc(s.dc.eval(env));
    case SourceSpec::Wave::Pulse:
      return Waveform::pulse(s.args[0].eval(env), s.args[1].eval(env), s.args[2].eval(env),
                             s.args[3].eval(env), s.args[4].eval(env), s.args[5].eval(env),
                             s.args[6].eval(env));
    case SourceSpec::Wave::Pwl: {
      std::vector<std::pair<double, double>> points;
      for (std::size_t i = 0; i + 1 < s.args.size(); i += 2)
        points.emplace_back(s.args[i].eval(env), s.args[i + 1].eval(env));
      return Waveform::pwl(std::move(points));
    }
  }
  return Waveform::dc(0.0);
}

double kv_or(const MeasureCard& card, const char* key, const ParamEnv& env, double fallback) {
  const auto it = card.kv.find(key);
  return it == card.kv.end() ? fallback : it->second.eval(env);
}

/// Pointers to the retunable devices, paired with their card index so
/// re-targeting can re-evaluate the card's expressions per design.
struct DeviceHandles {
  std::vector<std::pair<Resistor*, std::size_t>> resistors;
  std::vector<std::pair<Capacitor*, std::size_t>> capacitors;
  std::vector<std::pair<Mosfet*, std::size_t>> mosfets;
  std::vector<std::pair<VSource*, std::size_t>> vsources;
  std::vector<std::pair<ISource*, std::size_t>> isources;
  std::map<std::string, VSource*> vsource_by_name;
};

/// Instantiates every element card into `net` (which must be fresh; callers
/// prepare() it afterwards). Mismatch draws are one per MOSFET in element
/// order when `pv` is enabled. `handles` may be null (standalone tools).
void build_devices(const ElaboratedDeck& deck, const ParamEnv& env, const ProcessVariation& pv,
                   Netlist& net, DeviceHandles* handles) {
  std::map<std::string, MosModel> models;
  for (const auto& card : deck.models) models[card.name] = build_model(card, env);

  Rng var_rng(derive_seed(pv.seed, 0x5A5A));
  auto vary = [&](const MosModel& m) { return pv.enabled() ? ckt::vary_model(m, var_rng, pv) : m; };

  auto node = [&](const ElementCard& card, std::size_t i) { return net.node(card.nodes[i]); };
  for (std::size_t idx = 0; idx < deck.elements.size(); ++idx) {
    const ElementCard& card = deck.elements[idx];
    Device* dev = nullptr;
    switch (card.kind) {
      case ElementKind::Resistor: {
        auto* r = net.add<Resistor>(node(card, 0), node(card, 1), card.value.eval(env));
        if (handles != nullptr) handles->resistors.emplace_back(r, idx);
        dev = r;
        break;
      }
      case ElementKind::Capacitor: {
        auto* c = net.add<Capacitor>(node(card, 0), node(card, 1), card.value.eval(env));
        if (handles != nullptr) handles->capacitors.emplace_back(c, idx);
        dev = c;
        break;
      }
      case ElementKind::Inductor:
        dev = net.add<Inductor>(node(card, 0), node(card, 1), card.value.eval(env));
        break;
      case ElementKind::Vcvs:
        dev = net.add<Vcvs>(node(card, 0), node(card, 1), node(card, 2), node(card, 3),
                            card.value.eval(env));
        break;
      case ElementKind::VSource: {
        auto* v = net.add<VSource>(node(card, 0), node(card, 1), build_waveform(card.source, env),
                                   card.source.ac.empty() ? 0.0 : card.source.ac.eval(env));
        if (handles != nullptr) {
          handles->vsources.emplace_back(v, idx);
          handles->vsource_by_name[card.name] = v;
        }
        dev = v;
        break;
      }
      case ElementKind::ISource: {
        auto* i = net.add<ISource>(node(card, 0), node(card, 1), build_waveform(card.source, env),
                                   card.source.ac.empty() ? 0.0 : card.source.ac.eval(env));
        if (handles != nullptr) handles->isources.emplace_back(i, idx);
        dev = i;
        break;
      }
      case ElementKind::Mosfet: {
        const auto model_it = models.find(card.model);
        if (model_it == models.end())
          throw std::invalid_argument(card.location + ": unknown model '" + card.model +
                                      "' (missing .model card?)");
        auto* m = net.add<Mosfet>(node(card, 0), node(card, 1), node(card, 2), node(card, 3),
                                  vary(model_it->second), card.w.eval(env), card.l.eval(env),
                                  card.m.eval(env));
        if (handles != nullptr) handles->mosfets.emplace_back(m, idx);
        dev = m;
        break;
      }
    }
    net.set_label(dev, card.name);
  }
}

}  // namespace

void build_nominal_netlist(const ElaboratedDeck& deck, Netlist& out) {
  build_devices(deck, deck.nominal_env(), ProcessVariation{}, out, nullptr);
  out.prepare();
}

/// Persistent evaluator for one DeckProblem (see OtaSession for the
/// pattern): the netlist is built once from the elaborated cards — with
/// per-device mismatch draws when variation is pinned — then re-targeted per
/// design; the analyses keep their factorization workspaces across designs.
class DeckSession final : public ckt::EvalSession {
 public:
  DeckSession(const DeckProblem& problem, const ProcessVariation& pv)
      : problem_(&problem), pv_(pv) {}

  /// Builds the netlist and resolves every measure probe, throwing
  /// std::invalid_argument with card locations on binding errors. Called
  /// eagerly by DeckProblem's constructor validation, lazily by evaluate().
  void build() {
    const ElaboratedDeck& deck = problem_->deck_;
    const ParamEnv env = deck.nominal_env();

    build_devices(deck, env, pv_, net_, &handles_);
    net_.prepare();

    // Resolve measure probes against the built netlist.
    for (const MeasureCard& m : deck.measures) {
      int probe = kGround;
      VSource* source = nullptr;
      if (m.kind == MeasureKind::SupplyPower) {
        const auto it = handles_.vsource_by_name.find(m.element);
        if (it == handles_.vsource_by_name.end())
          throw std::invalid_argument(m.location + ": supplypower source '" + m.element +
                                      "' is not a V element in the deck");
        source = it->second;
      } else if (m.kind != MeasureKind::TotalRms) {
        try {
          probe = net_.find_node(m.node);
        } catch (const std::exception&) {
          throw std::invalid_argument(m.location + ": measure '" + m.name +
                                      "' probes unknown node '" + m.node + "'");
        }
      }
      probes_.push_back({&m, probe, source});
    }

    // Analysis grids are design-independent (validated at compile time), so
    // they are evaluated once here.
    if (const AnalysisCard* ac = deck.analysis(AnalysisKind::Ac))
      ac_freqs_ = log_frequency_grid(ac->f_start.eval(env), ac->f_stop.eval(env),
                                     ac->points_per_decade);
    if (const AnalysisCard* nz = deck.analysis(AnalysisKind::Noise)) {
      noise_freqs_ = log_frequency_grid(nz->f_start.eval(env), nz->f_stop.eval(env),
                                        nz->points_per_decade);
      try {
        noise_pos_ = net_.find_node(nz->noise_pos);
        noise_neg_ = nz->noise_neg.empty() ? kGround : net_.find_node(nz->noise_neg);
      } catch (const std::exception&) {
        throw std::invalid_argument(nz->location + ": .noise probes an unknown node");
      }
    }
    if (const AnalysisCard* tr = deck.analysis(AnalysisKind::Tran)) {
      tran_options_.dt = tr->dt.eval(env);
      tran_options_.t_stop = tr->t_stop.eval(env);
      if (!(tran_options_.dt > 0.0) || !(tran_options_.t_stop > tran_options_.dt))
        throw std::invalid_argument(tr->location + ": .tran needs 0 < dt < t_stop");
    }
    for (const auto& kind : {AnalysisKind::Ac, AnalysisKind::Tran, AnalysisKind::Noise})
      needs_[static_cast<int>(kind)] = false;
    for (const MeasureCard& m : deck.measures)
      needs_[static_cast<int>(m.analysis)] = true;
    built_ = true;
  }

  EvalResult evaluate(const Vec& x) override {
    EvalResult result;
    result.metrics = problem_->failure_metrics();
    result.simulation_ok = false;
    try {
      if (!built_) build();
      ParamEnv env = design_env(x);
      apply(env);

      // Operating point — every analysis and measure hangs off it.
      const DcResult op = dc_.solve(net_);
      if (!op.converged) return result;

      AcSweep ac_sweep;
      if (needs_[static_cast<int>(AnalysisKind::Ac)])
        ac_sweep = ac_.run(net_, op.x, ac_freqs_);

      TranResult tran;
      if (needs_[static_cast<int>(AnalysisKind::Tran)]) {
        tran = TranAnalysis(tran_options_).run(net_);
        if (!tran.converged) return result;
      }

      NoiseResult noise;
      if (needs_[static_cast<int>(AnalysisKind::Noise)])
        noise = noise_.run(net_, op.x, noise_pos_, noise_neg_, noise_freqs_);

      // Measures -> env -> lets -> metric expressions.
      for (const Probe& p : probes_) {
        const MeasureCard& m = *p.card;
        std::optional<double> value;
        switch (m.kind) {
          case MeasureKind::Voltage: value = Netlist::voltage(op.x, p.node); break;
          case MeasureKind::SupplyPower:
            value = std::abs(p.source->branch_current(op.x) * p.source->waveform().dc_value());
            break;
          case MeasureKind::DcGain: value = dc_gain_db(ac_sweep, p.node); break;
          case MeasureKind::Ugf: value = unity_gain_frequency(ac_sweep, p.node); break;
          case MeasureKind::PhaseMargin: value = phase_margin_deg(ac_sweep, p.node); break;
          case MeasureKind::Bandwidth: value = bandwidth_3db(ac_sweep, p.node); break;
          case MeasureKind::GainMargin: value = gain_margin_db(ac_sweep, p.node); break;
          case MeasureKind::MagnitudeAt:
            value = magnitude_at(ac_sweep, p.node, m.kv.at("F").eval(env));
            break;
          case MeasureKind::Settling:
          case MeasureKind::SlewRate:
          case MeasureKind::Overshoot:
          case MeasureKind::RiseTime: {
            const std::vector<double> wave = tran.node_waveform(p.node);
            value = tran_measure(m, tran, wave, env);
            break;
          }
          case MeasureKind::TotalRms: value = noise.total_rms; break;
        }
        if (!value.has_value()) {
          if (!m.has_default()) return result;  // undefined and no fallback
          value = m.kv.at("DEFAULT").eval(env);
        }
        env[m.name] = *value;
      }
      for (const auto& [name, expr] : problem_->deck_spec_.lets) env[name] = expr.eval(env);

      result.metrics[0] = problem_->deck_spec_.objective.eval(env);
      const auto& constraints = problem_->deck_spec_.constraints;
      for (std::size_t k = 0; k < constraints.size(); ++k)
        result.metrics[k + 1] = constraints[k].expr.eval(env);
      for (const double v : result.metrics)
        if (!std::isfinite(v)) {
          result.metrics = problem_->failure_metrics();
          return result;
        }
      result.simulation_ok = true;
      return result;
    } catch (const std::exception&) {
      result.metrics = problem_->failure_metrics();
      return result;  // failure metrics already set
    }
  }

 private:
  struct Probe {
    const MeasureCard* card;
    int node;
    VSource* source;
  };

  /// Parameter environment for design x: deck .params evaluated in order
  /// with designables pinned to x (so derived params like W2={W1*2} track).
  ParamEnv design_env(const Vec& x) const {
    ParamEnv env;
    const auto& designables = problem_->deck_spec_.params;
    for (const auto& [name, expr] : problem_->deck_.params) {
      bool pinned = false;
      for (std::size_t i = 0; i < designables.size(); ++i)
        if (designables[i].name == name) {
          env[name] = x[i];
          pinned = true;
          break;
        }
      if (!pinned) env[name] = expr.eval(env);
    }
    return env;
  }

  /// Re-targets every retunable device at the design environment. Sources
  /// are fully reset (waveform + AC magnitude), matching the handwritten
  /// sessions' discipline of clearing state a previous evaluation may have
  /// left behind.
  void apply(const ParamEnv& env) {
    const auto& cards = problem_->deck_.elements;
    for (auto& [r, idx] : handles_.resistors) r->set_resistance(cards[idx].value.eval(env));
    for (auto& [c, idx] : handles_.capacitors) c->set_capacitance(cards[idx].value.eval(env));
    for (auto& [m, idx] : handles_.mosfets)
      m->set_geometry(cards[idx].w.eval(env), cards[idx].l.eval(env), cards[idx].m.eval(env));
    for (auto& [v, idx] : handles_.vsources) {
      v->set_waveform(build_waveform(cards[idx].source, env));
      v->set_ac_magnitude(cards[idx].source.ac.empty() ? 0.0 : cards[idx].source.ac.eval(env));
    }
    for (auto& [i, idx] : handles_.isources) {
      i->set_waveform(build_waveform(cards[idx].source, env));
      i->set_ac_magnitude(cards[idx].source.ac.empty() ? 0.0 : cards[idx].source.ac.eval(env));
    }
  }

  std::optional<double> tran_measure(const MeasureCard& m, const TranResult& tran,
                                     const std::vector<double>& wave, const ParamEnv& env) const {
    if (wave.empty()) return std::nullopt;
    const double from = kv_or(m, "FROM", env, 0.0);
    const double initial = kv_or(m, "INITIAL", env, wave.front());
    const double final_v = kv_or(m, "FINAL", env, wave.back());
    switch (m.kind) {
      case MeasureKind::Settling: {
        const double tol =
            kv_or(m, "TOL", env, 0.01 * std::max(std::abs(final_v - wave.front()), 1e-12));
        return settling_time(tran.time, wave, from, final_v, tol);
      }
      case MeasureKind::SlewRate: return slew_rate(tran.time, wave);
      case MeasureKind::Overshoot: {
        std::size_t from_index = 0;
        while (from_index + 1 < tran.time.size() && tran.time[from_index] < from) ++from_index;
        return overshoot_fraction(wave, from_index, initial, final_v);
      }
      case MeasureKind::RiseTime: return rise_time(tran.time, wave, from, initial, final_v);
      default: return std::nullopt;
    }
  }

  const DeckProblem* problem_;
  ProcessVariation pv_;
  bool built_ = false;

  Netlist net_;
  DeviceHandles handles_;
  std::vector<Probe> probes_;

  std::vector<double> ac_freqs_, noise_freqs_;
  int noise_pos_ = kGround, noise_neg_ = kGround;
  TranOptions tran_options_;
  bool needs_[5] = {false, false, false, false, false};

  DcAnalysis dc_;
  AcAnalysis ac_;
  NoiseAnalysis noise_;
};

// ---------------------------------------------------------------------------
// DeckProblem
// ---------------------------------------------------------------------------

DeckProblem DeckProblem::from_files(const std::string& deck_path, const std::string& spec_path) {
  const std::string resolved_spec =
      spec_path.empty() ? default_spec_path(deck_path) : spec_path;
  return DeckProblem(elaborate_deck_file(deck_path), parse_spec_file(resolved_spec));
}

DeckProblem DeckProblem::from_text(const std::string& deck_text, const std::string& spec_text) {
  return DeckProblem(elaborate_deck_text(deck_text), parse_spec_text(spec_text));
}

DeckProblem::DeckProblem(ElaboratedDeck deck, DeckSpec spec)
    : deck_(std::move(deck)), deck_spec_(std::move(spec)) {
  // Problem spec from the deck spec.
  spec_.name = deck_spec_.problem_name;
  if (spec_.name.empty()) {
    const std::filesystem::path p(deck_.top_path);
    spec_.name = p.has_stem() ? p.stem().string() : "deck";
  }
  spec_.target_name = deck_spec_.objective_name;
  spec_.target_unit = deck_spec_.objective_unit;
  spec_.target_weight = deck_spec_.objective_weight;
  for (const auto& c : deck_spec_.constraints)
    spec_.constraints.push_back({c.name, c.unit, c.kind, c.bound, c.weight});

  lower_ = Vec(deck_spec_.params.size());
  upper_ = Vec(deck_spec_.params.size());
  integer_.resize(deck_spec_.params.size());
  for (std::size_t i = 0; i < deck_spec_.params.size(); ++i) {
    lower_[i] = deck_spec_.params[i].lower;
    upper_[i] = deck_spec_.params[i].upper;
    integer_[i] = deck_spec_.params[i].integer;
  }

  for (const auto& e : deck_.elements)
    if (e.kind == ElementKind::Mosfet) has_mosfets_ = true;

  // Fingerprint: deck content hash folded with the spec's semantic payload.
  std::uint64_t h = deck_.content_hash();
  auto fold_str = [&h](const std::string& s) {
    h = hash_u64(s.size(), h);
    h = hash_bytes(s.data(), s.size(), h);
  };
  auto fold_d = [&h](double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    h = hash_u64(bits, h);
  };
  h = hash_u64(deck_spec_.params.size(), h);
  for (const auto& p : deck_spec_.params) {
    fold_str(p.name);
    fold_d(p.lower);
    fold_d(p.upper);
    h = hash_u64(p.integer ? 1 : 0, h);
  }
  fold_str(deck_spec_.objective.canonical());
  fold_d(deck_spec_.objective_weight);
  h = hash_u64(deck_spec_.lets.size(), h);
  for (const auto& [name, expr] : deck_spec_.lets) {
    fold_str(name);
    fold_str(expr.canonical());
  }
  h = hash_u64(deck_spec_.constraints.size(), h);
  for (const auto& c : deck_spec_.constraints) {
    fold_str(c.name);
    fold_str(c.expr.canonical());
    h = hash_u64(static_cast<std::uint64_t>(c.kind), h);
    fold_d(c.bound);
    fold_d(c.weight);
  }
  fingerprint_ = h == 0 ? 1 : h;  // 0 is the "no content fingerprint" sentinel

  validate();
}

void DeckProblem::validate() const {
  // Designables must name deck .params.
  std::set<std::string> deck_params;
  for (const auto& [name, expr] : deck_.params) deck_params.insert(name);
  std::set<std::string> designables;
  for (const auto& p : deck_spec_.params) {
    if (deck_params.count(p.name) == 0)
      throw std::invalid_argument("spec param '" + p.name + "' is not a .param in the deck");
    designables.insert(p.name);
  }

  // A designable may only drive retunable element fields: values fixed at
  // netlist construction (inductors, VCVS gains, model cards, analysis
  // sweep grids) would go silently stale on re-targeting.
  auto forbid = [&](const Expr& e, const std::string& what) {
    std::set<std::string> refs;
    e.collect_params(refs);
    for (const auto& r : refs)
      if (designables.count(r))
        throw std::invalid_argument("designable parameter '" + r + "' drives " + what +
                                    ", which cannot be retuned per design");
  };
  for (const auto& e : deck_.elements) {
    if (e.kind == ElementKind::Inductor) forbid(e.value, "inductor " + e.name + " (" + e.location + ")");
    if (e.kind == ElementKind::Vcvs) forbid(e.value, "VCVS " + e.name + " (" + e.location + ")");
  }
  for (const auto& m : deck_.models)
    for (const auto& [key, expr] : m.params)
      forbid(expr, "model parameter " + m.name + "." + key + " (" + m.location + ")");
  for (const auto& a : deck_.analyses)
    for (const Expr* e : {&a.f_start, &a.f_stop, &a.dt, &a.t_stop})
      if (!e->empty()) forbid(*e, std::string("the .") + to_string(a.kind) + " sweep grid (" +
                                      a.location + ")");

  // Every measure needs its analysis card; MagnitudeAt needs f=.
  for (const auto& m : deck_.measures) {
    if (deck_.analysis(m.analysis) == nullptr)
      throw std::invalid_argument(m.location + ": measure '" + m.name + "' needs a ." +
                                  to_string(m.analysis) + " card in the deck");
    if (m.kind == MeasureKind::MagnitudeAt && m.kv.count("F") == 0)
      throw std::invalid_argument(m.location + ": magat needs f=<frequency>");
  }

  // Objective / let / constraint expressions may reference measures, earlier
  // lets and .params only.
  std::set<std::string> known = deck_params;
  for (const auto& m : deck_.measures) known.insert(m.name);
  auto resolve = [&known](const Expr& e, const std::string& what) {
    std::set<std::string> refs;
    e.collect_params(refs);
    for (const auto& r : refs)
      if (known.count(r) == 0)
        throw std::invalid_argument(what + " references '" + r +
                                    "', which is neither a measure, a let nor a .param");
  };
  for (const auto& [name, expr] : deck_spec_.lets) {
    resolve(expr, "let " + name);
    known.insert(name);
  }
  resolve(deck_spec_.objective, "the minimize expression");
  for (const auto& c : deck_spec_.constraints) resolve(c.expr, "constraint " + c.name);

  // Nominal build: resolves models and probe nodes, surfaces wiring errors
  // at compile time instead of as failure metrics mid-optimization.
  DeckSession session(*this, ProcessVariation{});
  session.build();
}

std::vector<std::string> DeckProblem::parameter_names() const {
  std::vector<std::string> names;
  names.reserve(deck_spec_.params.size());
  for (const auto& p : deck_spec_.params) names.push_back(p.name);
  return names;
}

EvalResult DeckProblem::evaluate(const Vec& x) const {
  // Fresh session per call: thread-safe by construction, identical results
  // to a persistent session (which only amortizes construction).
  return DeckSession(*this, variation_).evaluate(x);
}

EvalResult DeckProblem::evaluate_at(const Vec& x, const ProcessVariation& pv) const {
  ckt::validate_process_variation(pv);
  MAOPT_CHECK(!pv.enabled() || supports_process_variation(),
              "evaluate_at: enabled variation on a deck without MOSFET devices");
  return DeckSession(*this, pv).evaluate(x);
}

std::unique_ptr<ckt::EvalSession> DeckProblem::make_session() const {
  return std::make_unique<DeckSession>(*this, variation_);
}

std::unique_ptr<ckt::EvalSession> DeckProblem::make_session_at(const ProcessVariation& pv) const {
  ckt::validate_process_variation(pv);
  MAOPT_CHECK(!pv.enabled() || supports_process_variation(),
              "make_session_at: enabled variation on a deck without MOSFET devices");
  return std::make_unique<DeckSession>(*this, pv);
}

}  // namespace maopt::deck
