// DeckProblem: a SizingProblem compiled from a SPICE deck + spec file, with
// zero C++ per circuit.
//
// The compile step binds the two halves together and front-loads every
// validation it can:
//   * designable .params (spec `param` lines) become the optimization vector
//     x, in spec order, in the deck's natural (SI) units;
//   * each spec objective/constraint expression must resolve against the
//     deck's .measure names, `let` definitions and .params;
//   * every measure needs its analysis card, a resolvable probe node and —
//     for supplypower — an existing V-source element;
//   * a designable parameter may only drive retunable element fields
//     (R/C values, MOSFET W/L/M, source waveforms); driving an inductor,
//     VCVS gain or .model parameter is a compile error, because those are
//     fixed at netlist-build time and silently stale values would corrupt
//     every evaluation.
//
// Evaluation follows the handwritten testbenches: a DeckSession builds the
// netlist once (with per-device mismatch draws when variation is pinned),
// re-targets device parameters per design, runs exactly the analyses the
// measures need, and maps measure results through the spec expressions into
// the metric vector. content_fingerprint() is derived from the elaborated
// deck + spec, so ResultCache, warm-start journals and per-tenant cache
// namespaces distinguish decks by semantic content, not by object identity.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "circuits/sizing_problem.hpp"
#include "deck/elaborator.hpp"
#include "deck/spec.hpp"

namespace maopt::spice {
class Netlist;
}

namespace maopt::deck {

using ckt::Vec;

/// Builds `deck`'s circuit into `out` (which must be a fresh Netlist) at the
/// deck's nominal parameter values: models resolved, element labels applied,
/// prepare() called. The substrate for standalone deck tools
/// (examples/minispice) that want the elaborated language without the
/// optimization contract. Throws std::invalid_argument on binding errors
/// (unknown model, bad model parameter).
void build_nominal_netlist(const ElaboratedDeck& deck, spice::Netlist& out);

class DeckProblem final : public ckt::SizingProblem {
 public:
  /// Compiles deck + spec files. `spec_path` defaults to the deck path with
  /// a ".spec" extension. Throws spice::ParseError on syntax errors and
  /// std::invalid_argument on semantic (binding) errors.
  static DeckProblem from_files(const std::string& deck_path, const std::string& spec_path = "");
  static DeckProblem from_text(const std::string& deck_text, const std::string& spec_text);

  DeckProblem(ElaboratedDeck deck, DeckSpec spec);

  // SizingProblem contract ---------------------------------------------------
  const ckt::ProblemSpec& spec() const override { return spec_; }
  std::size_t dim() const override { return lower_.size(); }
  const Vec& lower_bounds() const override { return lower_; }
  const Vec& upper_bounds() const override { return upper_; }
  const std::vector<bool>& integer_mask() const override { return integer_; }
  std::vector<std::string> parameter_names() const override;

  ckt::EvalResult evaluate(const Vec& x) const override;
  ckt::EvalResult evaluate_at(const Vec& x, const ckt::ProcessVariation& pv) const override;
  std::unique_ptr<ckt::EvalSession> make_session() const override;
  std::unique_ptr<ckt::EvalSession> make_session_at(const ckt::ProcessVariation& pv) const override;

  void set_process_variation(const ckt::ProcessVariation& pv) override { variation_ = pv; }
  bool supports_process_variation() const override { return has_mosfets_; }

  std::uint64_t content_fingerprint() const override { return fingerprint_; }

  // Deck accessors -----------------------------------------------------------
  const ElaboratedDeck& deck() const { return deck_; }
  const DeckSpec& deck_spec() const { return deck_spec_; }

 private:
  friend class DeckSession;

  void validate() const;

  ElaboratedDeck deck_;
  DeckSpec deck_spec_;
  ckt::ProblemSpec spec_;
  Vec lower_, upper_;
  std::vector<bool> integer_;
  ckt::ProcessVariation variation_;
  bool has_mosfets_ = false;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace maopt::deck
