// Deck elaboration: the full-strength SPICE frontend behind DeckProblem.
//
// Where spice::parse_netlist turns a flat element list into a Netlist,
// elaboration handles everything a real deck throws at it and produces a
// *symbolic* card list instead of a wired netlist:
//
//   * .include / .lib       — resolved relative to the including file, with
//                             canonical-path cycle detection and a depth cap,
//   * .param NAME=expr      — arithmetic expressions over earlier parameters,
//   * .subckt / X elements  — flattened (internal nodes become
//                             "x<inst>.<node>", devices "X<INST>.<NAME>",
//                             instance k=v overrides substitute into every
//                             body expression),
//   * .op/.dc/.ac/.tran/.noise — analysis cards,
//   * .measure              — named post-processing measurements mapped onto
//                             spice/measure.hpp,
//   * continuation lines ('+'), '*' and ';' comments, .end termination,
//   * unknown dot-cards     — collected as warnings, never silently dropped.
//
// Element values stay Expr trees until a DeckProblem instantiates the deck
// at a concrete parameter environment — that is what makes a ".param" deck
// optimizable without text substitution hacks.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "deck/expression.hpp"
#include "spice/parser.hpp"

namespace maopt::deck {

enum class ElementKind { Resistor, Capacitor, Inductor, VSource, ISource, Vcvs, Mosfet };

/// Independent-source description with symbolic arguments.
struct SourceSpec {
  enum class Wave { Dc, Pulse, Pwl };
  Wave wave = Wave::Dc;
  Expr dc;                 ///< DC value (Wave::Dc)
  std::vector<Expr> args;  ///< PULSE: 7 args; PWL: t/v pairs flattened
  Expr ac;                 ///< AC magnitude; empty when the card has no AC term
};

/// One element card after flattening, with symbolic values.
struct ElementCard {
  ElementKind kind;
  std::string name;                ///< upper-cased, subckt-prefixed ("X1.M2")
  std::vector<std::string> nodes;  ///< lower-cased node names, ground = "0"
  Expr value;                      ///< R/C/L value, VCVS gain
  std::string model;               ///< MOSFET model name (upper-cased)
  Expr w, l, m;                    ///< MOSFET geometry (m defaults to 1)
  SourceSpec source;               ///< V/I sources
  std::string location;            ///< "path:line" for diagnostics
};

struct ModelCard {
  std::string name;                  ///< upper-cased
  std::string type;                  ///< "NMOS" or "PMOS"
  std::map<std::string, Expr> params;
  std::string location;
};

enum class AnalysisKind { Op, Dc, Ac, Tran, Noise };

const char* to_string(AnalysisKind kind);

struct AnalysisCard {
  AnalysisKind kind = AnalysisKind::Op;
  // .ac / .noise
  int points_per_decade = 10;
  Expr f_start, f_stop;
  // .tran
  Expr dt, t_stop;
  // .noise probe: V(pos[, neg])
  std::string noise_pos, noise_neg;
  // .dc (parsed for completeness; no measure reads it yet)
  std::string dc_source;
  Expr dc_start, dc_stop, dc_step;
  std::string location;
};

/// What a .measure card computes. Kinds map 1:1 onto spice/measure.hpp
/// (plus OP probes); see MeasureCard for the per-kind arguments.
enum class MeasureKind {
  Voltage,      ///< op:    V(node)
  SupplyPower,  ///< op:    |I·V| of a named V-source [W]
  DcGain,       ///< ac:    dc_gain_db(node) [dB]
  Ugf,          ///< ac:    unity_gain_frequency(node) [Hz], optional
  PhaseMargin,  ///< ac:    phase_margin_deg(node) [deg], optional
  Bandwidth,    ///< ac:    bandwidth_3db(node) [Hz], optional
  GainMargin,   ///< ac:    gain_margin_db(node) [dB], optional
  MagnitudeAt,  ///< ac:    magnitude_at(node, f=) [abs]
  Settling,     ///< tran:  settling_time(node, from=, final=, tol=) [s], optional
  SlewRate,     ///< tran:  slew_rate(node) [V/s]
  Overshoot,    ///< tran:  overshoot_fraction(node, from=, initial=, final=)
  RiseTime,     ///< tran:  rise_time(node, from=, initial=, final=) [s], optional
  TotalRms,     ///< noise: total integrated output noise [Vrms]
};

struct MeasureCard {
  std::string name;      ///< upper-cased result name
  AnalysisKind analysis; ///< which analysis result it reads
  MeasureKind kind;
  std::string node;      ///< probe node (lower-cased; "" for SupplyPower/TotalRms)
  std::string element;   ///< SupplyPower: the V-source element name (upper)
  std::map<std::string, Expr> kv;  ///< f=, from=, tol=, final=, initial=, default=
  std::string location;

  /// Optional-measure fallback: when the underlying measurement is undefined
  /// (no unity crossing, never settles, ...) and the card carries default=,
  /// that value is reported instead of failing the evaluation.
  bool has_default() const { return kv.count("DEFAULT") != 0; }
};

struct ElaboratedDeck {
  std::string top_path;  ///< as passed to elaborate_deck_file ("" for text)
  std::vector<ElementCard> elements;
  std::vector<ModelCard> models;
  std::vector<std::pair<std::string, Expr>> params;  ///< declaration order
  std::vector<AnalysisCard> analyses;
  std::vector<MeasureCard> measures;
  std::vector<std::string> warnings;

  /// First analysis card of the given kind; nullptr when absent.
  const AnalysisCard* analysis(AnalysisKind kind) const;

  /// Evaluates every .param in declaration order (later params may reference
  /// earlier ones); throws on unresolvable references.
  ParamEnv nominal_env() const;

  /// Content hash over the semantic payload — card kinds, names, nodes and
  /// canonical expressions — but NOT source locations, include structure,
  /// whitespace or comments. Re-elaborating a reformatted deck yields the
  /// same hash; changing any value, node or card changes it. This is what
  /// DeckProblem::content_fingerprint folds into problem_fingerprint.
  std::uint64_t content_hash() const;
};

/// Elaborates the deck rooted at `path`. Throws spice::ParseError (with file
/// and include-chain context) on malformed input.
ElaboratedDeck elaborate_deck_file(const std::string& path);

/// Elaborates in-memory text; .include paths resolve relative to the current
/// working directory unless `virtual_path` carries a directory component.
ElaboratedDeck elaborate_deck_text(const std::string& text,
                                   const std::string& virtual_path = "<deck>");

}  // namespace maopt::deck
