#include "deck/elaborator.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/hash.hpp"

namespace maopt::deck {

namespace {

namespace fs = std::filesystem;
using spice::ParseError;

constexpr int kMaxIncludeDepth = 20;
constexpr int kMaxSubcktDepth = 20;

std::string upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// One logical deck line (continuations joined) with full provenance.
struct Line {
  std::string text;
  std::string file;                 ///< path as the user wrote it
  int number = 0;                   ///< 1-based line in `file`
  std::vector<std::string> chain;   ///< include stack, outermost first ("path:line")
};

[[noreturn]] void fail(const Line& line, const std::string& message) {
  throw ParseError(line.file, line.number, message, line.chain);
}

/// Splits a logical line into tokens. Whitespace, '(', ')', ',' separate;
/// '=' is its own token; '{...}' and '\'...\'' become a single token holding
/// the inner text verbatim (expression bodies keep their spaces); '"..."'
/// groups a quoted path.
std::vector<std::string> tokenize(const Line& line) {
  std::vector<std::string> tokens;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      tokens.push_back(cur);
      cur.clear();
    }
  };
  const std::string& s = line.text;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '{' || c == '\'') {
      flush();
      const char close = c == '{' ? '}' : '\'';
      const auto end = s.find(close, i + 1);
      if (end == std::string::npos)
        fail(line, std::string("unterminated '") + c + "' expression");
      tokens.push_back(s.substr(i + 1, end - i - 1));
      if (tokens.back().empty()) fail(line, "empty expression");
      i = end;
    } else if (c == '"') {
      flush();
      const auto end = s.find('"', i + 1);
      if (end == std::string::npos) fail(line, "unterminated quoted string");
      tokens.push_back(s.substr(i + 1, end - i - 1));
      i = end;
    } else if (std::isspace(static_cast<unsigned char>(c)) || c == '(' || c == ')' || c == ',') {
      flush();
    } else if (c == '=') {
      flush();
      tokens.emplace_back("=");
    } else {
      cur.push_back(c);
    }
  }
  flush();
  return tokens;
}

Expr parse_expr(const std::string& token, const std::map<std::string, Expr>& scope,
                const Line& line) {
  try {
    Expr e = Expr::parse(token);
    return scope.empty() ? e : e.substitute(scope);
  } catch (const std::invalid_argument& e) {
    fail(line, e.what());
  }
}

/// key=value pairs from tokens[start..]; values become (scope-substituted)
/// expressions, keys are upper-cased.
std::map<std::string, Expr> parse_kv(const std::vector<std::string>& tokens, std::size_t start,
                                     const std::map<std::string, Expr>& scope, const Line& line) {
  std::map<std::string, Expr> kv;
  for (std::size_t i = start; i < tokens.size();) {
    if (i + 1 >= tokens.size() || tokens[i + 1] != "=")
      fail(line, "expected key=value, got '" + tokens[i] + "'");
    if (i + 2 >= tokens.size()) fail(line, "missing value after '" + tokens[i] + "='");
    kv[upper(tokens[i])] = parse_expr(tokens[i + 2], scope, line);
    i += 3;
  }
  return kv;
}

// ---------------------------------------------------------------------------
// Preprocessing: file reading, comment stripping, continuation joining,
// .include/.lib expansion.
// ---------------------------------------------------------------------------

/// Comment-strips and continuation-joins `text` into logical lines.
std::vector<Line> logical_lines(const std::string& text, const std::string& file,
                                const std::vector<std::string>& chain) {
  std::vector<Line> lines;
  std::istringstream stream(text);
  std::string raw;
  int number = 0;
  while (std::getline(stream, raw)) {
    ++number;
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();
    const auto semi = raw.find(';');
    if (semi != std::string::npos) raw = raw.substr(0, semi);
    const auto first = raw.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (raw[first] == '*') continue;
    if (raw[first] == '+') {
      if (lines.empty() || lines.back().file != file)
        throw ParseError(file, number, "continuation line with nothing to continue", chain);
      lines.back().text += " " + raw.substr(first + 1);
      continue;
    }
    lines.push_back(Line{raw, file, number, chain});
  }
  return lines;
}

struct Expander {
  std::vector<Line> out;
  std::set<std::string> active;  ///< canonicalized paths on the include stack

  void expand_file(const std::string& path, const Line* includer, int depth) {
    std::vector<std::string> chain = includer ? includer->chain : std::vector<std::string>{};
    if (includer) chain.push_back(includer->file + ":" + std::to_string(includer->number));
    auto err = [&](const std::string& message) -> ParseError {
      if (includer)
        return ParseError(includer->file, includer->number, message, includer->chain);
      return ParseError(path, 0, message, {});
    };
    if (depth > kMaxIncludeDepth) throw err("include depth exceeds " +
                                            std::to_string(kMaxIncludeDepth));
    std::error_code ec;
    const fs::path canon = fs::weakly_canonical(fs::path(path), ec);
    const std::string key = ec ? path : canon.string();
    if (!active.insert(key).second) throw err("circular .include of '" + path + "'");
    std::ifstream in(path);
    if (!in) throw err("cannot open '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    expand_text(text.str(), path, chain, depth);
    active.erase(key);
  }

  void expand_text(const std::string& text, const std::string& file,
                   const std::vector<std::string>& chain, int depth) {
    for (Line& line : logical_lines(text, file, chain)) {
      // Cheap dispatch on the first word only; full tokenization happens in
      // the elaboration walk.
      std::istringstream in(line.text);
      std::string word;
      in >> word;
      const std::string w = upper(word);
      if (w == ".INCLUDE" || w == ".LIB") {
        const auto tokens = tokenize(line);
        if (tokens.size() < 2) fail(line, w + " needs a path");
        if (w == ".LIB" && tokens.size() > 2)
          out.push_back(Line{"*WARN* " + w + " section '" + tokens[2] + "' ignored", line.file,
                             line.number, line.chain});
        fs::path target(tokens[1]);
        if (target.is_relative()) {
          const fs::path base = fs::path(line.file).parent_path();
          if (!base.empty()) target = base / target;
        }
        expand_file(target.string(), &line, depth + 1);
      } else {
        out.push_back(std::move(line));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Elaboration walk
// ---------------------------------------------------------------------------

struct SubcktDef {
  std::string name;                       ///< upper-cased
  std::vector<std::string> pins;          ///< lower-cased
  std::map<std::string, Expr> defaults;   ///< parameter defaults (upper keys)
  std::vector<Line> body;
  Line header;
};

MeasureKind measure_kind(const std::string& token, const Line& line) {
  const std::string k = upper(token);
  if (k == "V" || k == "VOLTAGE") return MeasureKind::Voltage;
  if (k == "POWER" || k == "SUPPLYPOWER") return MeasureKind::SupplyPower;
  if (k == "DCGAIN") return MeasureKind::DcGain;
  if (k == "UGF") return MeasureKind::Ugf;
  if (k == "PM" || k == "PHASEMARGIN") return MeasureKind::PhaseMargin;
  if (k == "BW" || k == "BANDWIDTH") return MeasureKind::Bandwidth;
  if (k == "GM" || k == "GAINMARGIN") return MeasureKind::GainMargin;
  if (k == "MAG" || k == "MAGAT") return MeasureKind::MagnitudeAt;
  if (k == "SETTLE" || k == "SETTLING") return MeasureKind::Settling;
  if (k == "SLEW" || k == "SLEWRATE") return MeasureKind::SlewRate;
  if (k == "OVERSHOOT") return MeasureKind::Overshoot;
  if (k == "RISETIME") return MeasureKind::RiseTime;
  if (k == "RMS" || k == "TOTALRMS" || k == "RMSNOISE") return MeasureKind::TotalRms;
  fail(line, "unknown measure kind '" + token + "'");
}

AnalysisKind measure_analysis(MeasureKind kind) {
  switch (kind) {
    case MeasureKind::Voltage:
    case MeasureKind::SupplyPower: return AnalysisKind::Op;
    case MeasureKind::DcGain:
    case MeasureKind::Ugf:
    case MeasureKind::PhaseMargin:
    case MeasureKind::Bandwidth:
    case MeasureKind::GainMargin:
    case MeasureKind::MagnitudeAt: return AnalysisKind::Ac;
    case MeasureKind::Settling:
    case MeasureKind::SlewRate:
    case MeasureKind::Overshoot:
    case MeasureKind::RiseTime: return AnalysisKind::Tran;
    case MeasureKind::TotalRms: return AnalysisKind::Noise;
  }
  return AnalysisKind::Op;
}

AnalysisKind analysis_kind(const std::string& token, const Line& line) {
  const std::string k = upper(token);
  if (k == "OP") return AnalysisKind::Op;
  if (k == "DC") return AnalysisKind::Dc;
  if (k == "AC") return AnalysisKind::Ac;
  if (k == "TRAN") return AnalysisKind::Tran;
  if (k == "NOISE") return AnalysisKind::Noise;
  fail(line, "unknown analysis '" + token + "'");
}

class Elaborator {
 public:
  ElaboratedDeck run(std::vector<Line> lines) {
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const Line& line = lines[i];
      // Synthetic warning lines injected by the expander (.lib sections).
      if (line.text.rfind("*WARN* ", 0) == 0) {
        warn(line, line.text.substr(7));
        continue;
      }
      const auto tokens = tokenize(line);
      if (tokens.empty()) continue;
      const std::string head = upper(tokens[0]);

      if (in_subckt_) {
        if (head == ".ENDS") {
          in_subckt_ = false;
          subckts_[current_.name] = current_;
          continue;
        }
        if (head == ".SUBCKT") fail(line, "nested .subckt definitions are not supported");
        if (head == ".END") fail(line, ".end inside a .subckt body (missing .ends?)");
        current_.body.push_back(line);
        continue;
      }

      if (head == ".END") break;
      if (head == ".SUBCKT") {
        begin_subckt(tokens, line);
      } else if (head == ".ENDS") {
        fail(line, ".ends without a matching .subckt");
      } else if (head == ".PARAM") {
        for (const auto& [name, expr] : parse_kv(tokens, 1, {}, line))
          deck_.params.emplace_back(name, expr);
      } else if (head == ".MODEL") {
        parse_model(tokens, line);
      } else if (head == ".OP" || head == ".DC" || head == ".AC" || head == ".TRAN" ||
                 head == ".NOISE") {
        parse_analysis(head, tokens, line);
      } else if (head == ".MEASURE" || head == ".MEAS") {
        parse_measure(tokens, line);
      } else if (head[0] == '.') {
        warn(line, "ignoring unsupported card '" + tokens[0] + "'");
      } else if (head[0] == 'X') {
        instantiate(tokens, line, "", {}, {}, 0);
      } else {
        deck_.elements.push_back(parse_element(tokens, line, "", {}, {}));
      }
    }
    if (in_subckt_) fail(current_.header, ".subckt '" + current_.name + "' is never closed");
    return std::move(deck_);
  }

 private:
  void warn(const Line& line, const std::string& message) {
    deck_.warnings.push_back(line.file + ":" + std::to_string(line.number) + ": " + message);
  }

  static std::string location(const Line& line) {
    return line.file + ":" + std::to_string(line.number);
  }

  void begin_subckt(const std::vector<std::string>& tokens, const Line& line) {
    if (tokens.size() < 3) fail(line, ".subckt needs a name and at least one pin");
    current_ = SubcktDef{};
    current_.name = upper(tokens[1]);
    current_.header = line;
    std::size_t i = 2;
    while (i < tokens.size() && !(i + 1 < tokens.size() && tokens[i + 1] == "="))
      current_.pins.push_back(lower(tokens[i++]));
    current_.defaults = parse_kv(tokens, i, {}, line);
    if (current_.pins.empty()) fail(line, ".subckt needs at least one pin");
    in_subckt_ = true;
  }

  void parse_model(const std::vector<std::string>& tokens, const Line& line) {
    if (tokens.size() < 3) fail(line, ".model needs a name and a type");
    ModelCard card;
    card.name = upper(tokens[1]);
    card.type = upper(tokens[2]);
    if (card.type != "NMOS" && card.type != "PMOS")
      fail(line, "unknown model type '" + tokens[2] + "'");
    card.params = parse_kv(tokens, 3, {}, line);
    card.location = location(line);
    deck_.models.push_back(std::move(card));
  }

  void parse_analysis(const std::string& head, const std::vector<std::string>& tokens,
                      const Line& line) {
    AnalysisCard card;
    card.location = location(line);
    auto expr = [&](std::size_t i) { return parse_expr(tokens[i], {}, line); };
    auto dec_sweep = [&](std::size_t i) {
      // "DEC n f_start f_stop"
      if (i + 3 >= tokens.size() || upper(tokens[i]) != "DEC")
        fail(line, head + " expects 'dec N f_start f_stop'");
      card.points_per_decade = static_cast<int>(expr(i + 1).eval({}));
      if (card.points_per_decade < 1) fail(line, "points per decade must be >= 1");
      card.f_start = expr(i + 2);
      card.f_stop = expr(i + 3);
      return i + 4;
    };
    if (head == ".OP") {
      card.kind = AnalysisKind::Op;
    } else if (head == ".AC") {
      card.kind = AnalysisKind::Ac;
      dec_sweep(1);
    } else if (head == ".TRAN") {
      card.kind = AnalysisKind::Tran;
      if (tokens.size() < 3) fail(line, ".tran expects 'dt t_stop'");
      card.dt = expr(1);
      card.t_stop = expr(2);
    } else if (head == ".NOISE") {
      card.kind = AnalysisKind::Noise;
      // ".noise v(out[, ref]) dec N f_start f_stop"
      if (tokens.size() < 3 || upper(tokens[1]) != "V")
        fail(line, ".noise expects 'v(node[,ref]) dec N f_start f_stop'");
      card.noise_pos = lower(tokens[2]);
      std::size_t i = 3;
      if (i < tokens.size() && upper(tokens[i]) != "DEC") card.noise_neg = lower(tokens[i++]);
      dec_sweep(i);
    } else {  // .DC
      card.kind = AnalysisKind::Dc;
      if (tokens.size() < 5) fail(line, ".dc expects 'source start stop step'");
      card.dc_source = upper(tokens[1]);
      card.dc_start = expr(2);
      card.dc_stop = expr(3);
      card.dc_step = expr(4);
      warn(line, ".dc is parsed but no measure kind reads it yet");
    }
    deck_.analyses.push_back(std::move(card));
  }

  void parse_measure(const std::vector<std::string>& tokens, const Line& line) {
    // ".measure ANALYSIS NAME KIND [v(node) | element] [k=v ...]"
    if (tokens.size() < 4) fail(line, ".measure expects 'analysis name kind ...'");
    MeasureCard card;
    card.location = location(line);
    const AnalysisKind stated = analysis_kind(tokens[1], line);
    card.name = upper(tokens[2]);
    card.kind = measure_kind(tokens[3], line);
    card.analysis = measure_analysis(card.kind);
    if (stated != card.analysis)
      fail(line, "measure kind '" + tokens[3] + "' belongs to the " +
                     std::string(to_string(card.analysis)) + " analysis, not " +
                     std::string(to_string(stated)));
    std::size_t i = 4;
    if (card.kind == MeasureKind::SupplyPower) {
      if (i >= tokens.size()) fail(line, "supplypower needs a V-source element name");
      card.element = upper(tokens[i++]);
    } else if (card.kind != MeasureKind::TotalRms) {
      // All other kinds probe a node: "v(node)" tokenizes to "v" "node".
      if (i + 1 >= tokens.size() || upper(tokens[i]) != "V")
        fail(line, "measure kind '" + tokens[3] + "' needs a probe 'v(node)'");
      card.node = lower(tokens[i + 1]);
      i += 2;
    }
    card.kv = parse_kv(tokens, i, {}, line);
    for (const auto& m : deck_.measures)
      if (m.name == card.name) fail(line, "duplicate measure name '" + card.name + "'");
    deck_.measures.push_back(std::move(card));
  }

  /// Maps a node reference into the current instance context.
  static std::string map_node(const std::string& raw, const std::string& prefix,
                              const std::map<std::string, std::string>& node_map) {
    const std::string n = lower(raw);
    if (n == "0" || n == "gnd") return "0";
    const auto it = node_map.find(n);
    if (it != node_map.end()) return it->second;
    return prefix.empty() ? n : lower(prefix) + "." + n;
  }

  ElementCard parse_element(const std::vector<std::string>& tokens, const Line& line,
                            const std::string& prefix,
                            const std::map<std::string, std::string>& node_map,
                            const std::map<std::string, Expr>& scope) {
    ElementCard card;
    card.name = prefix.empty() ? upper(tokens[0]) : upper(prefix) + "." + upper(tokens[0]);
    card.location = location(line);
    auto node = [&](std::size_t i) { return map_node(tokens[i], prefix, node_map); };
    auto expr = [&](std::size_t i) { return parse_expr(tokens[i], scope, line); };
    switch (upper(tokens[0])[0]) {
      case 'R':
      case 'C':
      case 'L': {
        const char k = upper(tokens[0])[0];
        card.kind = k == 'R'   ? ElementKind::Resistor
                    : k == 'C' ? ElementKind::Capacitor
                               : ElementKind::Inductor;
        if (tokens.size() != 4)
          fail(line, std::string(1, k) + ": expected name n1 n2 value");
        card.nodes = {node(1), node(2)};
        card.value = expr(3);
        break;
      }
      case 'V':
      case 'I': {
        card.kind = upper(tokens[0])[0] == 'V' ? ElementKind::VSource : ElementKind::ISource;
        if (tokens.size() < 3) fail(line, "source needs two nodes");
        card.nodes = {node(1), node(2)};
        card.source = parse_source(tokens, 3, line, scope);
        break;
      }
      case 'E': {
        card.kind = ElementKind::Vcvs;
        if (tokens.size() != 6) fail(line, "E: expected name p n cp cn gain");
        card.nodes = {node(1), node(2), node(3), node(4)};
        card.value = expr(5);
        break;
      }
      case 'M': {
        card.kind = ElementKind::Mosfet;
        if (tokens.size() < 6) fail(line, "M: expected name d g s b model [kv...]");
        card.nodes = {node(1), node(2), node(3), node(4)};
        card.model = upper(tokens[5]);
        card.w = Expr::number(1e-6);
        card.l = Expr::number(1e-6);
        card.m = Expr::number(1.0);
        for (const auto& [key, value] : parse_kv(tokens, 6, scope, line)) {
          if (key == "W")
            card.w = value;
          else if (key == "L")
            card.l = value;
          else if (key == "M")
            card.m = value;
          else
            fail(line, "unknown MOSFET parameter '" + key + "'");
        }
        break;
      }
      default:
        fail(line, "unknown element '" + tokens[0] + "'");
    }
    return card;
  }

  SourceSpec parse_source(const std::vector<std::string>& tokens, std::size_t i, const Line& line,
                          const std::map<std::string, Expr>& scope) {
    SourceSpec out;
    out.dc = Expr::number(0.0);
    auto expr = [&](std::size_t k) { return parse_expr(tokens[k], scope, line); };
    auto is_keyword = [&](std::size_t k) {
      const std::string u = upper(tokens[k]);
      return u == "DC" || u == "AC" || u == "PULSE" || u == "PWL";
    };
    if (i < tokens.size() && !is_keyword(i)) {
      out.dc = expr(i);  // bare value shorthand: "V1 a 0 1.8"
      ++i;
    }
    while (i < tokens.size()) {
      const std::string kw = upper(tokens[i]);
      if (kw == "DC") {
        if (i + 1 >= tokens.size()) fail(line, "DC needs a value");
        out.wave = SourceSpec::Wave::Dc;
        out.dc = expr(i + 1);
        i += 2;
      } else if (kw == "AC") {
        if (i + 1 >= tokens.size()) fail(line, "AC needs a magnitude");
        out.ac = expr(i + 1);
        i += 2;
      } else if (kw == "PULSE") {
        if (i + 7 >= tokens.size()) fail(line, "PULSE needs 7 arguments");
        out.wave = SourceSpec::Wave::Pulse;
        out.args.clear();
        for (std::size_t k = 1; k <= 7; ++k) out.args.push_back(expr(i + k));
        i += 8;
      } else if (kw == "PWL") {
        out.wave = SourceSpec::Wave::Pwl;
        out.args.clear();
        ++i;
        while (i < tokens.size() && !is_keyword(i)) out.args.push_back(expr(i++));
        if (out.args.empty() || out.args.size() % 2 != 0)
          fail(line, "PWL needs time/value pairs");
      } else {
        fail(line, "unknown source keyword '" + tokens[i] + "'");
      }
    }
    return out;
  }

  /// Flattens one X instance card: maps pins, prefixes internal nodes and
  /// element names, substitutes instance parameters into body expressions.
  void instantiate(const std::vector<std::string>& tokens, const Line& line,
                   const std::string& outer_prefix,
                   const std::map<std::string, std::string>& outer_nodes,
                   const std::map<std::string, Expr>& outer_scope, int depth) {
    if (depth > kMaxSubcktDepth) fail(line, "subcircuit nesting exceeds depth limit (cycle?)");
    // Positional tokens run until the first k=v pair; the last positional is
    // the subckt name, the rest are pin connections.
    std::size_t kv_start = tokens.size();
    for (std::size_t i = 1; i < tokens.size(); ++i)
      if (i + 1 < tokens.size() && tokens[i + 1] == "=") {
        kv_start = i;
        break;
      }
    if (kv_start < 3) fail(line, "X: expected name nodes... subckt [k=v ...]");
    const std::string sub_name = upper(tokens[kv_start - 1]);
    const auto def_it = subckts_.find(sub_name);
    if (def_it == subckts_.end())
      fail(line, "unknown subcircuit '" + tokens[kv_start - 1] +
                     "' (define .subckt before use)");
    const SubcktDef& def = def_it->second;
    const std::size_t num_pins = kv_start - 2;
    if (num_pins != def.pins.size())
      fail(line, "subcircuit '" + sub_name + "' has " + std::to_string(def.pins.size()) +
                     " pins, got " + std::to_string(num_pins));

    const std::string prefix =
        outer_prefix.empty() ? upper(tokens[0]) : outer_prefix + "." + upper(tokens[0]);
    std::map<std::string, std::string> node_map;
    for (std::size_t p = 0; p < num_pins; ++p)
      node_map[def.pins[p]] = map_node(tokens[1 + p], outer_prefix, outer_nodes);

    // Instance scope: defaults (closed over the outer scope) overridden by
    // the X-card's k=v arguments (also outer-scope expressions).
    std::map<std::string, Expr> scope;
    for (const auto& [name, expr] : def.defaults) scope[name] = expr.substitute(outer_scope);
    for (const auto& [name, expr] : parse_kv(tokens, kv_start, outer_scope, line))
      scope[name] = expr;

    for (const Line& body_line : def.body) {
      const auto body_tokens = tokenize(body_line);
      if (body_tokens.empty()) continue;
      const std::string head = upper(body_tokens[0]);
      if (head == ".PARAM") {
        // Subckt-local parameters join the instance scope (in order).
        for (const auto& [name, expr] : parse_kv(body_tokens, 1, scope, body_line))
          scope[name] = expr;
      } else if (head[0] == '.') {
        fail(body_line, "card '" + body_tokens[0] + "' is not allowed inside .subckt");
      } else if (head[0] == 'X') {
        instantiate(body_tokens, body_line, prefix, node_map, scope, depth + 1);
      } else {
        deck_.elements.push_back(parse_element(body_tokens, body_line, prefix, node_map, scope));
      }
    }
  }

  ElaboratedDeck deck_;
  std::map<std::string, SubcktDef> subckts_;
  SubcktDef current_;
  bool in_subckt_ = false;
};

void fold_string(std::uint64_t& h, const std::string& s) {
  h = hash_u64(s.size(), h);
  h = hash_bytes(s.data(), s.size(), h);
}

void fold_expr(std::uint64_t& h, const Expr& e) {
  fold_string(h, e.empty() ? std::string("<none>") : e.canonical());
}

}  // namespace

const char* to_string(AnalysisKind kind) {
  switch (kind) {
    case AnalysisKind::Op: return "op";
    case AnalysisKind::Dc: return "dc";
    case AnalysisKind::Ac: return "ac";
    case AnalysisKind::Tran: return "tran";
    case AnalysisKind::Noise: return "noise";
  }
  return "?";
}

const AnalysisCard* ElaboratedDeck::analysis(AnalysisKind kind) const {
  for (const auto& card : analyses)
    if (card.kind == kind) return &card;
  return nullptr;
}

ParamEnv ElaboratedDeck::nominal_env() const {
  ParamEnv env;
  for (const auto& [name, expr] : params) {
    try {
      env[name] = expr.eval(env);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(".param " + name + ": " + e.what());
    }
  }
  return env;
}

std::uint64_t ElaboratedDeck::content_hash() const {
  std::uint64_t h = hash_u64(0xDECC0DEULL, kHashSeed);
  h = hash_u64(elements.size(), h);
  for (const auto& e : elements) {
    h = hash_u64(static_cast<std::uint64_t>(e.kind), h);
    fold_string(h, e.name);
    h = hash_u64(e.nodes.size(), h);
    for (const auto& n : e.nodes) fold_string(h, n);
    fold_expr(h, e.value);
    fold_string(h, e.model);
    fold_expr(h, e.w);
    fold_expr(h, e.l);
    fold_expr(h, e.m);
    h = hash_u64(static_cast<std::uint64_t>(e.source.wave), h);
    fold_expr(h, e.source.dc);
    fold_expr(h, e.source.ac);
    h = hash_u64(e.source.args.size(), h);
    for (const auto& a : e.source.args) fold_expr(h, a);
  }
  h = hash_u64(models.size(), h);
  for (const auto& m : models) {
    fold_string(h, m.name);
    fold_string(h, m.type);
    h = hash_u64(m.params.size(), h);
    for (const auto& [key, value] : m.params) {
      fold_string(h, key);
      fold_expr(h, value);
    }
  }
  h = hash_u64(params.size(), h);
  for (const auto& [name, expr] : params) {
    fold_string(h, name);
    fold_expr(h, expr);
  }
  h = hash_u64(analyses.size(), h);
  for (const auto& a : analyses) {
    h = hash_u64(static_cast<std::uint64_t>(a.kind), h);
    h = hash_u64(static_cast<std::uint64_t>(a.points_per_decade), h);
    fold_expr(h, a.f_start);
    fold_expr(h, a.f_stop);
    fold_expr(h, a.dt);
    fold_expr(h, a.t_stop);
    fold_string(h, a.noise_pos);
    fold_string(h, a.noise_neg);
    fold_string(h, a.dc_source);
    fold_expr(h, a.dc_start);
    fold_expr(h, a.dc_stop);
    fold_expr(h, a.dc_step);
  }
  h = hash_u64(measures.size(), h);
  for (const auto& m : measures) {
    fold_string(h, m.name);
    h = hash_u64(static_cast<std::uint64_t>(m.analysis), h);
    h = hash_u64(static_cast<std::uint64_t>(m.kind), h);
    fold_string(h, m.node);
    fold_string(h, m.element);
    h = hash_u64(m.kv.size(), h);
    for (const auto& [key, value] : m.kv) {
      fold_string(h, key);
      fold_expr(h, value);
    }
  }
  return h;
}

ElaboratedDeck elaborate_deck_file(const std::string& path) {
  Expander expander;
  expander.expand_file(path, nullptr, 0);
  ElaboratedDeck deck = Elaborator().run(std::move(expander.out));
  deck.top_path = path;
  return deck;
}

ElaboratedDeck elaborate_deck_text(const std::string& text, const std::string& virtual_path) {
  Expander expander;
  expander.expand_text(text, virtual_path, {}, 0);
  ElaboratedDeck deck = Elaborator().run(std::move(expander.out));
  deck.top_path = virtual_path;
  return deck;
}

}  // namespace maopt::deck
