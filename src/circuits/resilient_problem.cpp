#include "circuits/resilient_problem.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/thread_annotations.hpp"

namespace maopt::ckt {

namespace {

/// Deterministic 64-bit hash of a design vector's bit pattern: fault and
/// jitter decisions depend on (seed, x), never on call order, so they
/// survive threading and checkpoint/resume replay.
std::uint64_t hash_design(const Vec& x) {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (const double v : x) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    h ^= bits + 0x9E3779B97F4A7C15ULL + (h << 6U) + (h >> 2U);
  }
  return h;
}

bool all_plausible(const Vec& v, double max_magnitude) {
  for (const double m : v)
    if (!std::isfinite(m) || std::abs(m) > max_magnitude) return false;
  return true;
}

std::chrono::nanoseconds to_duration(double seconds) {
  return std::chrono::nanoseconds(static_cast<long long>(seconds * 1e9));
}

}  // namespace

const char* to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::Timeout: return "timeout";
    case FailureKind::NonConvergence: return "non-convergence";
    case FailureKind::NonFinite: return "non-finite";
    case FailureKind::Exception: return "exception";
  }
  return "unknown";
}

std::string FailureStats::report() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%llu evals, %llu failed (%llu timeout, %llu non-convergence, "
                "%llu non-finite, %llu exception), %llu retries",
                static_cast<unsigned long long>(evaluations),
                static_cast<unsigned long long>(failures),
                static_cast<unsigned long long>(by_kind[0]),
                static_cast<unsigned long long>(by_kind[1]),
                static_cast<unsigned long long>(by_kind[2]),
                static_cast<unsigned long long>(by_kind[3]),
                static_cast<unsigned long long>(retries));
  return buf;
}

ResilientEvaluator::ResilientEvaluator(const SizingProblem& inner, ResilientConfig config)
    : inner_(&inner), config_(config) {
  MAOPT_CHECK(config_.max_retries >= 0, "ResilientEvaluator: max_retries must be >= 0");
  MAOPT_CHECK(config_.retry_jitter_frac >= 0.0,
              "ResilientEvaluator: retry_jitter_frac must be >= 0");
  MAOPT_CHECK(config_.max_metric_magnitude > 0.0,
              "ResilientEvaluator: max_metric_magnitude must be > 0");
}

ResilientEvaluator::~ResilientEvaluator() {
  // An abandoned attempt still references the inner problem; give it time to
  // finish before the inner problem can be torn down by our caller.
  while (inflight_.load(std::memory_order_acquire) > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

ResilientEvaluator::Attempt ResilientEvaluator::run_attempt(const Vec& x, EvalSession* session,
                                                            const ProcessVariation& pv) const {
  attempts_.fetch_add(1, std::memory_order_relaxed);

  auto classify = [this](EvalResult result, const std::exception_ptr& error) {
    Attempt a;
    if (error) {
      a.kind = FailureKind::Exception;
    } else if (!result.simulation_ok) {
      a.kind = FailureKind::NonConvergence;
    } else if (result.metrics.size() != num_metrics() ||
               !all_plausible(result.metrics, config_.max_metric_magnitude)) {
      a.kind = FailureKind::NonFinite;
    } else {
      a.ok = true;
      a.result = std::move(result);
    }
    return a;
  };

  if (config_.deadline_seconds <= 0.0) {
    EvalResult result;
    std::exception_ptr error;
    try {
      result = session != nullptr ? session->evaluate(x) : inner_->evaluate_at(x, pv);
    } catch (...) {
      error = std::current_exception();
    }
    return classify(std::move(result), error);
  }

  struct Shared {
    Mutex mutex;
    CondVar cv;
    bool done MAOPT_GUARDED_BY(mutex) = false;
    EvalResult result MAOPT_GUARDED_BY(mutex);
    std::exception_ptr error MAOPT_GUARDED_BY(mutex);
  };
  auto shared = std::make_shared<Shared>();
  inflight_.fetch_add(1, std::memory_order_relaxed);
  std::thread worker([inner = inner_, x, pv, shared, &inflight = inflight_] {
    EvalResult result;
    std::exception_ptr error;
    try {
      result = inner->evaluate_at(x, pv);
    } catch (...) {
      error = std::current_exception();
    }
    {
      const MutexLock lock(shared->mutex);
      shared->result = std::move(result);
      shared->error = error;
      shared->done = true;
    }
    shared->cv.notify_one();
    // Must be the thread's last action: once inflight hits zero the
    // ResilientEvaluator (and with it this reference) may be destroyed.
    inflight.fetch_sub(1, std::memory_order_release);
  });

  MutexLock lock(shared->mutex);
  const bool finished =
      shared->cv.wait_for(lock, to_duration(config_.deadline_seconds),
                          [&shared]() MAOPT_REQUIRES(shared->mutex) { return shared->done; });
  if (!finished) {
    lock.unlock();
    worker.detach();  // cannot kill a thread portably; result is discarded
    Attempt a;
    a.kind = FailureKind::Timeout;
    return a;
  }
  EvalResult result = std::move(shared->result);
  const std::exception_ptr error = shared->error;
  lock.unlock();
  worker.join();
  return classify(std::move(result), error);
}

namespace {
// Per-thread record of the most recent evaluate() (see last_call_stats()).
thread_local ResilientEvaluator::CallStats tl_last_call;
}  // namespace

ResilientEvaluator::CallStats ResilientEvaluator::last_call_stats() { return tl_last_call; }

EvalResult ResilientEvaluator::evaluate(const Vec& x) const {
  return evaluate_with(x, nullptr, ProcessVariation{});
}

EvalResult ResilientEvaluator::evaluate_at(const Vec& x, const ProcessVariation& pv) const {
  validate_process_variation(pv);
  return evaluate_with(x, nullptr, pv);
}

EvalResult ResilientEvaluator::evaluate_with(const Vec& x, EvalSession* session,
                                             const ProcessVariation& pv) const {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  const Vec& lo = lower_bounds();
  const Vec& hi = upper_bounds();

  CallStats call;
  const int attempts_allowed = 1 + config_.max_retries;
  Vec attempt_x = x;
  for (int attempt = 0; attempt < attempts_allowed; ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      ++call.retries;
      // Deterministic jittered restart: a tiny perturbation often steps a
      // solver off a singular Jacobian, like re-seeding the operating point.
      Rng jitter(derive_seed(config_.seed,
                             hash_design(x) ^ static_cast<std::uint64_t>(attempt)));
      attempt_x = x;
      for (std::size_t j = 0; j < attempt_x.size(); ++j)
        attempt_x[j] += config_.retry_jitter_frac * (hi[j] - lo[j]) * jitter.normal();
      attempt_x = clip(std::move(attempt_x));
    }
    Attempt a = run_attempt(attempt_x, session, pv);
    if (a.ok) {
      tl_last_call = call;
      return std::move(a.result);
    }
    call.last_kind = a.kind;
    by_kind_[static_cast<std::size_t>(a.kind)].fetch_add(1, std::memory_order_relaxed);
  }

  failures_.fetch_add(1, std::memory_order_relaxed);
  call.failed = true;
  tl_last_call = call;
  EvalResult fail;
  fail.metrics = inner_->failure_metrics();
  fail.simulation_ok = false;
  return fail;
}

/// Persistent session: holds the inner problem's session and routes every
/// attempt through it, keeping the full retry/classification pipeline.
class ResilientEvaluator::Session final : public EvalSession {
 public:
  Session(const ResilientEvaluator& outer, std::unique_ptr<EvalSession> inner,
          ProcessVariation pv)
      : outer_(&outer), inner_(std::move(inner)), pv_(pv) {}

  EvalResult evaluate(const Vec& x) override {
    return outer_->evaluate_with(x, inner_.get(), pv_);
  }

 private:
  const ResilientEvaluator* outer_;
  std::unique_ptr<EvalSession> inner_;
  ProcessVariation pv_;  ///< retries that bypass the inner session keep the pin
};

std::unique_ptr<EvalSession> ResilientEvaluator::make_session() const {
  // With a deadline, abandoned attempts may still be running on detached
  // threads; a reused inner session would race them. Fall back to the default
  // forwarding session, which goes through the thread-per-attempt path.
  if (config_.deadline_seconds > 0.0) return SizingProblem::make_session();
  return std::make_unique<Session>(*this, inner_->make_session(), ProcessVariation{});
}

std::unique_ptr<EvalSession> ResilientEvaluator::make_session_at(const ProcessVariation& pv) const {
  validate_process_variation(pv);
  // Same deadline caveat as make_session(); the default forwarding session
  // routes through evaluate_at(x, pv) and thus the thread-per-attempt path.
  if (config_.deadline_seconds > 0.0) return SizingProblem::make_session_at(pv);
  return std::make_unique<Session>(*this, inner_->make_session_at(pv), pv);
}

FailureStats ResilientEvaluator::stats() const {
  FailureStats s;
  s.evaluations = evaluations_.load(std::memory_order_relaxed);
  s.attempts = attempts_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.failures = failures_.load(std::memory_order_relaxed);
  for (std::size_t k = 0; k < kNumFailureKinds; ++k)
    s.by_kind[k] = by_kind_[k].load(std::memory_order_relaxed);
  return s;
}

FaultInjectionConfig FaultInjectionConfig::mixed(double total_rate, std::uint64_t seed,
                                                 double hang_seconds) {
  FaultInjectionConfig c;
  c.throw_rate = c.hang_rate = c.nan_rate = c.garbage_rate = total_rate / 4.0;
  c.seed = seed;
  c.hang_seconds = hang_seconds;
  return c;
}

FaultInjectingProblem::FaultInjectingProblem(const SizingProblem& inner,
                                             FaultInjectionConfig config)
    : inner_(&inner), config_(config) {
  MAOPT_CHECK(config_.throw_rate >= 0 && config_.hang_rate >= 0 && config_.nan_rate >= 0 &&
                  config_.garbage_rate >= 0,
              "FaultInjectingProblem: rates must be >= 0");
  MAOPT_CHECK(config_.throw_rate + config_.hang_rate + config_.nan_rate + config_.garbage_rate <=
                  1.0 + 1e-12,
              "FaultInjectingProblem: rates must sum to <= 1");
}

EvalResult FaultInjectingProblem::evaluate(const Vec& x) const {
  return evaluate_at(x, ProcessVariation{});
}

EvalResult FaultInjectingProblem::evaluate_at(const Vec& x, const ProcessVariation& pv) const {
  validate_process_variation(pv);
  // Fold the variation into the fault hash only when it is enabled, so the
  // nominal fault decision for a design stays bit-identical to evaluate()
  // regardless of which entry point the caller used.
  std::uint64_t h = hash_design(x);
  if (pv.enabled()) {
    auto mix = [&h](double v) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &v, sizeof(bits));
      h ^= bits + 0x9E3779B97F4A7C15ULL + (h << 6U) + (h >> 2U);
    };
    mix(pv.sigma_vth);
    mix(pv.sigma_kp_rel);
    mix(static_cast<double>(pv.seed));
    mix(pv.nmos_vth_shift);
    mix(pv.pmos_vth_shift);
    mix(pv.nmos_kp_factor);
    mix(pv.pmos_kp_factor);
  }
  Rng rng(derive_seed(config_.seed, h));
  double u = rng.uniform();

  if ((u -= config_.throw_rate) < 0.0) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    throw std::runtime_error("injected fault: Newton iteration diverged");
  }
  if ((u -= config_.hang_rate) < 0.0) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(to_duration(config_.hang_seconds));
    return inner_->evaluate_at(x, pv);
  }
  if ((u -= config_.nan_rate) < 0.0) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    EvalResult r;
    r.metrics.assign(num_metrics(), std::numeric_limits<double>::quiet_NaN());
    r.simulation_ok = true;  // the dangerous case: failure not flagged
    return r;
  }
  if ((u -= config_.garbage_rate) < 0.0) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    EvalResult r;
    r.metrics.resize(num_metrics());
    for (auto& m : r.metrics) m = (rng.uniform() < 0.5 ? -1.0 : 1.0) * 1e12 * rng.uniform();
    r.simulation_ok = true;
    return r;
  }
  return inner_->evaluate_at(x, pv);
}

}  // namespace maopt::ckt
