#include "circuits/two_stage_ota.hpp"

#include <array>
#include <cmath>

#include "circuits/process_variation.hpp"
#include "spice/devices.hpp"
#include "spice/measure.hpp"
#include "spice/mosfet.hpp"
#include "spice/noise_analysis.hpp"
#include "spice/tran_analysis.hpp"

namespace maopt::ckt {

namespace {

using namespace maopt::spice;

constexpr double kVdd = 1.8;
constexpr double kVcm = 0.9;    // input common mode
constexpr double kIbias = 20e-6;

struct OtaParams {
  double l[5];  // m
  double w[5];  // m
  double r;     // Ohm
  double c;     // F
  double cf;    // F
  double n[3];  // multipliers
};

OtaParams unpack(const Vec& x) {
  OtaParams p{};
  for (int i = 0; i < 5; ++i) p.l[i] = x[static_cast<std::size_t>(i)] * 1e-6;
  for (int i = 0; i < 5; ++i) p.w[i] = x[static_cast<std::size_t>(5 + i)] * 1e-6;
  p.r = x[10] * 1e3;
  p.c = x[11] * 1e-15;
  p.cf = x[12] * 1e-15;
  for (int i = 0; i < 3; ++i) p.n[i] = x[static_cast<std::size_t>(13 + i)];
  return p;
}

struct FetGeom {
  double w, l, m;
};

/// Geometry of every Mosfet, in build order: M8, M5, M1, M2, M3, M4, M6, M7.
std::array<FetGeom, 8> fet_geoms(const OtaParams& p) {
  return {{{p.w[2], p.l[2], 1.0},
           {p.w[2], p.l[2], p.n[0]},
           {p.w[0], p.l[0], 1.0},
           {p.w[0], p.l[0], 1.0},
           {p.w[1], p.l[1], 1.0},
           {p.w[1], p.l[1], 1.0},
           {p.w[3], p.l[3], p.n[1]},
           {p.w[4], p.l[4], p.n[2]}}};
}

/// Handles to the sources we drive in the different measurement setups.
///
/// Signal polarity in this topology: M2's gate (mirror-output side) is the
/// NON-inverting input — M2 gate up -> n2 down -> M6 (PMOS CS) sources more
/// -> OUT up. M1's gate is the inverting input, so the unity-gain buffer
/// ties OUT to M1's gate and drives M2's gate.
struct OtaBench {
  Netlist net;
  VSource* vdd = nullptr;
  VSource* vinp = nullptr;  ///< non-inverting input (M2 gate)
  VSource* vinn = nullptr;  ///< inverting input (M1 gate); null in unity-gain
  std::array<Mosfet*, 8> fets{};
  Resistor* rz = nullptr;
  Capacitor* cmiller = nullptr;
  Capacitor* cload = nullptr;
  int out = 0;
};

/// Builds the OTA; `unity_gain` ties M1's gate to OUT instead of a source.
OtaBench build(const OtaParams& p, bool unity_gain, const ProcessVariation& pv) {
  OtaBench b;
  Netlist& n = b.net;
  const int vdd = n.node("vdd");
  const int inp = n.node("inp");
  const int out = n.node("out");
  const int inn = unity_gain ? out : n.node("inn");
  const int tail = n.node("tail");
  const int n1 = n.node("n1");
  const int n2 = n.node("n2");
  const int vbn = n.node("vbn");
  const int nc = n.node("nc");
  const int gnd = n.node("0");

  const MosModel nm = MosModel::nmos_180();
  const MosModel pm = MosModel::pmos_180();

  // Per-device deterministic mismatch draws (one per Mosfet add, in order).
  Rng var_rng(derive_seed(pv.seed, 0x5A5A));
  auto vary = [&](const MosModel& m) { return pv.enabled() ? vary_model(m, var_rng, pv) : m; };

  b.vdd = n.add<VSource>(vdd, gnd, Waveform::dc(kVdd));
  b.vinp = n.add<VSource>(inp, gnd, Waveform::dc(kVcm));
  if (!unity_gain) b.vinn = n.add<VSource>(inn, gnd, Waveform::dc(kVcm));

  const auto fg = fet_geoms(p);
  // Bias: 20 uA into diode M8; M5 mirrors with multiplier N1.
  n.add<ISource>(vdd, vbn, Waveform::dc(kIbias));
  b.fets[0] = n.add<Mosfet>(vbn, vbn, gnd, gnd, vary(nm), fg[0].w, fg[0].l);            // M8
  b.fets[1] = n.add<Mosfet>(tail, vbn, gnd, gnd, vary(nm), fg[1].w, fg[1].l, fg[1].m);  // M5

  b.fets[2] = n.add<Mosfet>(n1, inn, tail, gnd, vary(nm), fg[2].w, fg[2].l);   // M1 (inverting)
  b.fets[3] = n.add<Mosfet>(n2, inp, tail, gnd, vary(nm), fg[3].w, fg[3].l);   // M2 (non-inverting)
  b.fets[4] = n.add<Mosfet>(n1, n1, vdd, vdd, vary(pm), fg[4].w, fg[4].l);     // M3 (diode)
  b.fets[5] = n.add<Mosfet>(n2, n1, vdd, vdd, vary(pm), fg[5].w, fg[5].l);     // M4

  b.fets[6] = n.add<Mosfet>(out, n2, vdd, vdd, vary(pm), fg[6].w, fg[6].l, fg[6].m);    // M6
  b.fets[7] = n.add<Mosfet>(out, vbn, gnd, gnd, vary(nm), fg[7].w, fg[7].l, fg[7].m);   // M7

  b.rz = n.add<Resistor>(n2, nc, p.r);                                   // nulling R
  b.cmiller = n.add<Capacitor>(nc, out, p.cf);                           // Miller cap
  b.cload = n.add<Capacitor>(out, gnd, p.c);                             // load cap

  b.out = out;
  n.prepare();
  return b;
}

/// Re-targets an existing bench at a new design: sets every x-dependent
/// device parameter and resets all source state a previous evaluation may
/// have left behind (swing-sweep DC level, transient waveform, AC
/// magnitudes — including after a mid-evaluation failure).
void apply(OtaBench& b, const OtaParams& p) {
  const auto fg = fet_geoms(p);
  for (std::size_t i = 0; i < fg.size(); ++i) b.fets[i]->set_geometry(fg[i].w, fg[i].l, fg[i].m);
  b.rz->set_resistance(p.r);
  b.cmiller->set_capacitance(p.cf);
  b.cload->set_capacitance(p.c);
  b.vdd->set_dc(kVdd);
  b.vdd->set_ac_magnitude(0.0);
  b.vinp->set_dc(kVcm);
  b.vinp->set_ac_magnitude(0.0);
  if (b.vinn != nullptr) {
    b.vinn->set_dc(kVcm);
    b.vinn->set_ac_magnitude(0.0);
  }
}

/// Persistent evaluator: testbenches are built once and re-targeted per
/// design; the DC/AC/noise analyses keep their factorization workspaces
/// across designs. One instance per thread.
class OtaSession final : public EvalSession {
 public:
  OtaSession(const TwoStageOta& problem, const ProcessVariation& pv)
      : problem_(&problem), pv_(pv) {}

  EvalResult evaluate(const Vec& x) override {
    EvalResult result;
    result.metrics = problem_->failure_metrics();
    result.simulation_ok = false;
    try {
      const OtaParams p = unpack(x);
      if (!built_) {
        ug_ = build(p, /*unity_gain=*/true, pv_);
        ol_ = build(p, /*unity_gain=*/false, pv_);
        built_ = true;
      }
      apply(ug_, p);
      apply(ol_, p);

      // --- Unity-gain bench first: its OP provides the replica bias for the
      // open-loop AC measurements (a high-gain amp rails if both inputs sit at
      // exactly mid-rail, so the inverting input is pinned at the closed-loop
      // output voltage instead).
      const DcResult ug_op = dc_.solve(ug_.net);
      if (!ug_op.converged) return result;
      const double v_out_op = Netlist::voltage(ug_op.x, ug_.out);

      // --- Open-loop bench: OP, differential / common-mode / supply AC ---
      ol_.vinn->set_dc(v_out_op);
      const DcResult op = dc_.solve(ol_.net);
      if (!op.converged) return result;

      const double power_mw = std::abs(ol_.vdd->branch_current(op.x)) * kVdd * 1e3;

      // The three AC measurements differ only in excitation, so they share
      // one G/C assembly and one factorization per frequency: capture each
      // excitation's rhs, then sweep all of them together.
      const auto freqs = log_frequency_grid(1.0, 10e9, 10);
      std::vector<CVec> excitations(3);
      ol_.vinp->set_ac_magnitude(0.5);
      ol_.vinn->set_ac_magnitude(-0.5);
      ol_.net.build_ac_rhs(excitations[0]);  // differential
      ol_.vinp->set_ac_magnitude(1.0);
      ol_.vinn->set_ac_magnitude(1.0);
      ol_.net.build_ac_rhs(excitations[1]);  // common mode
      ol_.vinp->set_ac_magnitude(0.0);
      ol_.vinn->set_ac_magnitude(0.0);
      ol_.vdd->set_ac_magnitude(1.0);
      ol_.net.build_ac_rhs(excitations[2]);  // supply
      ol_.vdd->set_ac_magnitude(0.0);
      const auto sweeps = ac_.run_multi(ol_.net, op.x, freqs, excitations);
      const AcSweep& diff = sweeps[0];
      const double adm_db = dc_gain_db(diff, ol_.out);
      const auto ugf = unity_gain_frequency(diff, ol_.out);
      const auto pm = phase_margin_deg(diff, ol_.out);
      const double cmrr_db = adm_db - dc_gain_db(sweeps[1], ol_.out);
      const double psrr_db = adm_db - dc_gain_db(sweeps[2], ol_.out);

      // --- Unity-gain bench: settling, swing, noise ---
      // Integrated output noise, 1 Hz .. 1 GHz.
      const auto nfreqs = log_frequency_grid(1.0, 1e9, 8);
      const NoiseResult nres = noise_.run(ug_.net, ug_op.x, ug_.out, kGround, nfreqs);
      const double noise_mv = nres.total_rms * 1e3;

      // Output swing: sweep the buffer input and find the contiguous tracking
      // region (|vout - vin| < 150 mV) around mid-rail.
      Vec guess = ug_op.x;
      constexpr int kSweepPoints = 33;
      std::vector<bool> tracks(kSweepPoints, false);
      std::vector<double> vins(kSweepPoints);
      for (int k = 0; k < kSweepPoints; ++k) {
        const double vin = 0.05 + (kVdd - 0.1) * static_cast<double>(k) / (kSweepPoints - 1);
        vins[static_cast<std::size_t>(k)] = vin;
        ug_.vinp->set_dc(vin);
        const DcResult pt = dc_.solve(ug_.net, &guess);
        if (!pt.converged) continue;
        guess = pt.x;
        tracks[static_cast<std::size_t>(k)] =
            std::abs(Netlist::voltage(pt.x, ug_.out) - vin) < 0.15;
      }
      ug_.vinp->set_dc(kVcm);
      int mid = kSweepPoints / 2;
      double swing = 0.0;
      if (tracks[static_cast<std::size_t>(mid)]) {
        int lo = mid, hi = mid;
        while (lo > 0 && tracks[static_cast<std::size_t>(lo - 1)]) --lo;
        while (hi < kSweepPoints - 1 && tracks[static_cast<std::size_t>(hi + 1)]) ++hi;
        swing = vins[static_cast<std::size_t>(hi)] - vins[static_cast<std::size_t>(lo)];
      }

      // Settling: 100 mV input step in unity gain, 1% band.
      constexpr double kStepT = 10e-9;
      constexpr double kStepV = 0.1;
      ug_.vinp->set_waveform(
          Waveform::pwl({{0.0, kVcm}, {kStepT, kVcm}, {kStepT + 1e-9, kVcm + kStepV}}));
      TranOptions topt;
      topt.t_stop = 400e-9;
      topt.dt = 0.5e-9;
      TranAnalysis tran(topt);
      const TranResult tr = tran.run(ug_.net);
      double settling_ns = 1e4;  // fail sentinel: 10 us
      if (tr.converged) {
        const auto wave = tr.node_waveform(ug_.out);
        const double final_v = wave.back();
        if (std::abs(final_v - (kVcm + kStepV)) < 0.05) {
          const auto st = settling_time(tr.time, wave, kStepT, final_v, 0.01 * kStepV);
          if (st) settling_ns = *st * 1e9;
        }
      }

      result.metrics[TwoStageOta::kPowerMw] = power_mw;
      result.metrics[TwoStageOta::kDcGainDb] = adm_db;
      result.metrics[TwoStageOta::kCmrrDb] = cmrr_db;
      result.metrics[TwoStageOta::kPsrrDb] = psrr_db;
      result.metrics[TwoStageOta::kPhaseMarginDeg] = pm.value_or(0.0);
      result.metrics[TwoStageOta::kSettlingNs] = settling_ns;
      result.metrics[TwoStageOta::kUgfMhz] = ugf.value_or(0.0) * 1e-6;
      result.metrics[TwoStageOta::kSwingV] = swing;
      result.metrics[TwoStageOta::kNoiseMvrms] = noise_mv;
      result.simulation_ok = true;
      return result;
    } catch (const std::exception&) {
      return result;  // failure metrics already set
    }
  }

 private:
  const TwoStageOta* problem_;
  ProcessVariation pv_;
  bool built_ = false;
  OtaBench ug_, ol_;
  DcAnalysis dc_;
  AcAnalysis ac_;
  NoiseAnalysis noise_;
};

}  // namespace

TwoStageOta::TwoStageOta() {
  spec_.name = "two_stage_ota";
  spec_.target_name = "power";
  spec_.target_unit = "mW";
  spec_.target_weight = 0.01;  // w0: keeps the target term below any single clamped penalty
  spec_.constraints = {
      {"dc_gain", "dB", ConstraintKind::GreaterEqual, 60.0, 1.0},
      {"cmrr", "dB", ConstraintKind::GreaterEqual, 80.0, 1.0},
      {"psrr", "dB", ConstraintKind::GreaterEqual, 80.0, 1.0},
      {"phase_margin", "deg", ConstraintKind::GreaterEqual, 60.0, 1.0},
      {"settling_time", "ns", ConstraintKind::LessEqual, 100.0, 1.0},
      {"ugf", "MHz", ConstraintKind::GreaterEqual, 30.0, 1.0},
      // Paper bound is 1.5 V; the unity-buffer tracking measurement on this
      // NMOS-input topology ceilings at ~1.43 V (input common-mode range), so
      // 1.4 V keeps the constraint binding but achievable (see EXPERIMENTS.md).
      {"output_swing", "V", ConstraintKind::GreaterEqual, 1.4, 1.0},
      {"output_noise", "mVrms", ConstraintKind::LessEqual, 30.0, 1.0},
  };
  // Table I ranges, in natural units.
  lower_ = {0.18, 0.18, 0.18, 0.18, 0.18, 0.22, 0.22, 0.22, 0.22, 0.22, 0.1, 100, 100, 1, 1, 1};
  upper_ = {2, 2, 2, 2, 2, 150, 150, 150, 150, 150, 100, 2000, 10000, 20, 20, 20};
  integer_.assign(16, false);
  for (int i = 13; i < 16; ++i) integer_[static_cast<std::size_t>(i)] = true;
}

std::vector<std::string> TwoStageOta::parameter_names() const {
  return {"L1", "L2", "L3", "L4", "L5", "W1", "W2", "W3", "W4", "W5",
          "R",  "C",  "Cf", "N1", "N2", "N3"};
}

EvalResult TwoStageOta::evaluate(const Vec& x) const {
  // A fresh session per call: thread-safe by construction, identical results
  // to a persistent session (which only amortizes construction).
  return OtaSession(*this, variation_).evaluate(x);
}

std::unique_ptr<EvalSession> TwoStageOta::make_session() const {
  return std::make_unique<OtaSession>(*this, variation_);
}

EvalResult TwoStageOta::evaluate_at(const Vec& x, const ProcessVariation& pv) const {
  validate_process_variation(pv);
  return OtaSession(*this, pv).evaluate(x);
}

std::unique_ptr<EvalSession> TwoStageOta::make_session_at(const ProcessVariation& pv) const {
  validate_process_variation(pv);
  return std::make_unique<OtaSession>(*this, pv);
}

}  // namespace maopt::ckt
