// The black-box optimization interface between circuits and optimizers
// (Eq. 1 of the paper): a box-bounded parameter vector x mapped by SPICE
// simulation to metrics f(x) = [f0, f1..fm], where f0 is the target to
// minimize and f1..fm are constrained.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace maopt::ckt {

using linalg::Vec;

enum class ConstraintKind {
  GreaterEqual,  ///< f_i(x) >= bound
  LessEqual,     ///< f_i(x) <= bound
};

/// Gaussian device-mismatch settings for Monte Carlo yield analysis (see
/// process_variation.hpp). Default-constructed = nominal (no variation).
struct ProcessVariation {
  // Random local mismatch (per-device Gaussian draws, seeded).
  double sigma_vth = 0.0;     ///< absolute threshold spread [V]
  double sigma_kp_rel = 0.0;  ///< relative KP spread
  std::uint64_t seed = 0;     ///< Monte Carlo instance id

  // Deterministic global corner shifts, applied per device type before the
  // random mismatch (see corner_variation() in process_variation.hpp).
  double nmos_vth_shift = 0.0;
  double pmos_vth_shift = 0.0;
  double nmos_kp_factor = 1.0;
  double pmos_kp_factor = 1.0;

  bool enabled() const {
    return sigma_vth != 0.0 || sigma_kp_rel != 0.0 || nmos_vth_shift != 0.0 ||
           pmos_vth_shift != 0.0 || nmos_kp_factor != 1.0 || pmos_kp_factor != 1.0;
  }
};

/// Contract-checks a variation setting: sigmas must be finite and >= 0,
/// shifts finite, KP factors finite and > 0. Throws ContractViolation
/// (MAOPT_CHECK) on violation — a negative sigma or zero KP factor would
/// otherwise silently produce unphysical model cards deep inside a sweep.
void validate_process_variation(const ProcessVariation& pv);

struct ConstraintSpec {
  std::string name;
  std::string unit;
  ConstraintKind kind;
  double bound;        ///< c_i in Eq. 2
  double weight = 1.0; ///< w_i in Eq. 2
};

struct ProblemSpec {
  std::string name;
  std::string target_name;  ///< f_0, minimized
  std::string target_unit;
  double target_weight = 1.0;  ///< w_0 in Eq. 2 (applied to f0 / f0_reference)
  std::vector<ConstraintSpec> constraints;
};

/// Result of one simulation: metrics[0] = f0, metrics[1..m] = constraints.
/// The variant fields carry robustness provenance when the result is an
/// aggregate over a corner / Monte Carlo sweep (variation_sweep.hpp):
/// `variants_total` = 0 marks a plain single-point evaluation; `degraded`
/// marks an aggregate whose metrics were shaped by a partial-failure policy
/// (some variants failed but the sweep still produced a usable bound).
struct EvalResult {
  Vec metrics;
  bool simulation_ok = true;
  bool degraded = false;              ///< partial-failure policy shaped the metrics
  std::uint32_t variants_failed = 0;  ///< failed or breaker-skipped variants
  std::uint32_t variants_total = 0;   ///< sweep width; 0 = single-point result
};

/// Reusable single-threaded evaluator for one problem. Circuit problems back
/// this with persistent testbench netlists and solver workspaces, so that
/// evaluating many same-topology designs amortizes everything that is
/// design-independent (netlist construction, matrix/LU storage). Results
/// must be identical to the owning problem's evaluate() for the same design
/// and process-variation settings.
///
/// A session is NOT thread-safe — one session per worker thread. It
/// snapshots the problem's process-variation settings at creation; create a
/// fresh session after set_process_variation().
class EvalSession {
 public:
  virtual ~EvalSession() = default;
  virtual EvalResult evaluate(const Vec& x) = 0;
};

class SizingProblem {
 public:
  virtual ~SizingProblem() = default;

  virtual const ProblemSpec& spec() const = 0;
  virtual std::size_t dim() const = 0;
  virtual const Vec& lower_bounds() const = 0;
  virtual const Vec& upper_bounds() const = 0;
  /// True for parameters constrained to integer values (device multipliers).
  virtual const std::vector<bool>& integer_mask() const = 0;
  virtual std::vector<std::string> parameter_names() const = 0;

  /// Simulates design x (assumed already within bounds; callers should pass
  /// through clip()). Must be thread-safe: implementations build a fresh
  /// netlist per call.
  virtual EvalResult evaluate(const Vec& x) const = 0;

  /// Simulates design x under the given variation setting WITHOUT touching
  /// the problem's ambient variation state — the thread-safe primitive corner
  /// sweeps and Monte Carlo yield estimation are built on (the legacy
  /// set_process_variation() + evaluate() sequence mutates shared state and
  /// cannot run concurrently). Must be thread-safe whenever evaluate() is.
  /// The default contract-checks pv and forwards to evaluate(): correct for
  /// variation-free problems at nominal, a ContractViolation when an enabled
  /// pv reaches a problem without variation support. Variation-capable
  /// circuits and decorators override.
  virtual EvalResult evaluate_at(const Vec& x, const ProcessVariation& pv) const;

  /// Session pinned to one variation setting (the per-worker analog of
  /// evaluate_at). Default: contract-checks pv like evaluate_at and returns a
  /// session forwarding every call to evaluate_at(x, pv).
  virtual std::unique_ptr<EvalSession> make_session_at(const ProcessVariation& pv) const;

  /// Creates a reusable evaluation session (see EvalSession). The default
  /// forwards every call to evaluate() — correct for analytic problems and
  /// for wrappers that add no per-call state of their own.
  virtual std::unique_ptr<EvalSession> make_session() const;

  /// Metrics reported when the simulator fails to converge: a maximally
  /// violating, finite vector so surrogate training stays well-posed.
  virtual Vec failure_metrics() const;

  std::size_t num_metrics() const { return 1 + spec().constraints.size(); }

  /// Process-variation hooks: circuits that support Monte Carlo mismatch
  /// override these; analytic problems ignore them.
  virtual void set_process_variation(const ProcessVariation& pv) { (void)pv; }
  virtual bool supports_process_variation() const { return false; }

  /// Content fingerprint for data-defined problems: a stable hash of the
  /// problem's *semantic payload* beyond what spec()/bounds expose (e.g. the
  /// elaborated netlist of a deck-compiled problem). problem_fingerprint()
  /// (eval/result_cache) folds this in when nonzero, so two decks with the
  /// same spec but different circuits never share cache entries. The default
  /// 0 means "spec + bounds fully identify the problem" and leaves every
  /// existing fingerprint (and on-disk journal) unchanged. Decorators that
  /// wrap an inner problem must forward this.
  virtual std::uint64_t content_fingerprint() const { return 0; }

  /// Clamp to bounds and round integer-constrained parameters.
  Vec clip(Vec x) const;

  /// Uniform random design within bounds (integers rounded).
  Vec random_design(Rng& rng) const;

  /// True when all constraints in `metrics` are satisfied.
  bool feasible(const Vec& metrics) const;
};

/// Signed normalized violation of constraint `k` (0 when satisfied):
/// GreaterEqual: max(0, (c - f)/|c|);  LessEqual: max(0, (f - c)/|c|).
double normalized_violation(const ConstraintSpec& c, double value);

}  // namespace maopt::ckt
