#include "circuits/folded_cascode_ota.hpp"

#include <array>
#include <cmath>

#include "spice/dc_analysis.hpp"
#include "circuits/process_variation.hpp"
#include "spice/devices.hpp"
#include "spice/measure.hpp"
#include "spice/mosfet.hpp"
#include "spice/noise_analysis.hpp"
#include "spice/tran_analysis.hpp"

namespace maopt::ckt {

namespace {

using namespace maopt::spice;

constexpr double kVdd = 1.8;
constexpr double kVcm = 0.9;
constexpr double kIbias = 20e-6;
constexpr double kVcascN = 0.9;  // NMOS cascode gate bias
constexpr double kVcascP = 0.9;  // PMOS cascode gate bias

struct FcParams {
  double l[5];
  double w[5];
  double c;
  double n[3];
};

FcParams unpack(const Vec& x) {
  FcParams p{};
  for (int i = 0; i < 5; ++i) p.l[i] = x[static_cast<std::size_t>(i)] * 1e-6;
  for (int i = 0; i < 5; ++i) p.w[i] = x[static_cast<std::size_t>(5 + i)] * 1e-6;
  p.c = x[10] * 1e-15;
  for (int i = 0; i < 3; ++i) p.n[i] = x[static_cast<std::size_t>(11 + i)];
  return p;
}

struct FetGeom {
  double w, l, m;
};

/// Geometry of every Mosfet, in build order: PMOS bias diode, M0 tail, NMOS
/// bias diode, M1, M2, M3, M4, M5, M6, M7, M8, M9, M10.
std::array<FetGeom, 13> fet_geoms(const FcParams& p) {
  return {{{p.w[1], p.l[1], 1.0},
           {p.w[1], p.l[1], p.n[0]},
           {p.w[2], p.l[2], 1.0},
           {p.w[0], p.l[0], 1.0},
           {p.w[0], p.l[0], 1.0},
           {p.w[2], p.l[2], p.n[1]},
           {p.w[2], p.l[2], p.n[1]},
           {p.w[3], p.l[3], 1.0},
           {p.w[3], p.l[3], 1.0},
           {p.w[4], p.l[4], p.n[2]},
           {p.w[4], p.l[4], p.n[2]},
           {p.w[4], p.l[4], p.n[2]},
           {p.w[4], p.l[4], p.n[2]}}};
}

struct FcBench {
  Netlist net;
  VSource* vdd = nullptr;
  VSource* vinp = nullptr;  ///< non-inverting (M1 gate)
  VSource* vinn = nullptr;  ///< inverting (M2 gate); null in unity-gain
  std::array<Mosfet*, 13> fets{};
  Capacitor* cload = nullptr;
  int out = 0;
};

FcBench build(const FcParams& p, bool unity_gain, const ProcessVariation& pv) {
  FcBench b;
  Netlist& n = b.net;
  const int vdd = n.node("vdd");
  const int inp = n.node("inp");
  const int out = n.node("out");
  const int inn = unity_gain ? out : n.node("inn");
  const int tailp = n.node("tailp");
  const int fa = n.node("fa");
  const int fb = n.node("fb");
  const int ma = n.node("ma");
  const int pa = n.node("pa");
  const int pb = n.node("pb");
  const int vbp = n.node("vbp");
  const int vbn = n.node("vbn");
  const int vcn = n.node("vcn");
  const int vcp = n.node("vcp");
  const int gnd = n.node("0");

  const MosModel nm = MosModel::nmos_180();
  const MosModel pm = MosModel::pmos_180();

  // Per-device deterministic mismatch draws (one per Mosfet add, in order).
  Rng var_rng(derive_seed(pv.seed, 0x5A5A));
  auto vary = [&](const MosModel& m) { return pv.enabled() ? vary_model(m, var_rng, pv) : m; };

  b.vdd = n.add<VSource>(vdd, gnd, Waveform::dc(kVdd));
  b.vinp = n.add<VSource>(inp, gnd, Waveform::dc(kVcm));
  if (!unity_gain) b.vinn = n.add<VSource>(inn, gnd, Waveform::dc(kVcm));
  n.add<VSource>(vcn, gnd, Waveform::dc(kVcascN));
  n.add<VSource>(vcp, gnd, Waveform::dc(kVcascP));

  const auto fg = fet_geoms(p);
  // PMOS bias diode + tail; NMOS bias diode for the folding sinks.
  n.add<ISource>(vbp, gnd, Waveform::dc(kIbias));
  b.fets[0] = n.add<Mosfet>(vbp, vbp, vdd, vdd, vary(pm), fg[0].w, fg[0].l);             // PMOS diode
  b.fets[1] = n.add<Mosfet>(tailp, vbp, vdd, vdd, vary(pm), fg[1].w, fg[1].l, fg[1].m);  // M0 tail
  n.add<ISource>(vdd, vbn, Waveform::dc(kIbias));
  b.fets[2] = n.add<Mosfet>(vbn, vbn, gnd, gnd, vary(nm), fg[2].w, fg[2].l);             // NMOS diode

  b.fets[3] = n.add<Mosfet>(fa, inp, tailp, vdd, vary(pm), fg[3].w, fg[3].l);            // M1
  b.fets[4] = n.add<Mosfet>(fb, inn, tailp, vdd, vary(pm), fg[4].w, fg[4].l);            // M2

  b.fets[5] = n.add<Mosfet>(fa, vbn, gnd, gnd, vary(nm), fg[5].w, fg[5].l, fg[5].m);     // M3 sink
  b.fets[6] = n.add<Mosfet>(fb, vbn, gnd, gnd, vary(nm), fg[6].w, fg[6].l, fg[6].m);     // M4 sink

  b.fets[7] = n.add<Mosfet>(ma, vcn, fa, gnd, vary(nm), fg[7].w, fg[7].l);               // M5 cascode
  b.fets[8] = n.add<Mosfet>(out, vcn, fb, gnd, vary(nm), fg[8].w, fg[8].l);              // M6 cascode

  // High-swing cascode PMOS mirror: gate of M7/M8 tied to the diode-side
  // cascode output `ma`.
  b.fets[9] = n.add<Mosfet>(pa, ma, vdd, vdd, vary(pm), fg[9].w, fg[9].l, fg[9].m);      // M7
  b.fets[10] = n.add<Mosfet>(pb, ma, vdd, vdd, vary(pm), fg[10].w, fg[10].l, fg[10].m);  // M8
  b.fets[11] = n.add<Mosfet>(ma, vcp, pa, vdd, vary(pm), fg[11].w, fg[11].l, fg[11].m);  // M9 cascode
  b.fets[12] = n.add<Mosfet>(out, vcp, pb, vdd, vary(pm), fg[12].w, fg[12].l, fg[12].m); // M10 cascode

  b.cload = n.add<Capacitor>(out, gnd, p.c);

  b.out = out;
  n.prepare();
  return b;
}

/// Re-targets an existing bench at a new design, resetting all source state
/// a previous evaluation may have left behind (see TwoStageOta::apply).
void apply(FcBench& b, const FcParams& p) {
  const auto fg = fet_geoms(p);
  for (std::size_t i = 0; i < fg.size(); ++i) b.fets[i]->set_geometry(fg[i].w, fg[i].l, fg[i].m);
  b.cload->set_capacitance(p.c);
  b.vdd->set_dc(kVdd);
  b.vdd->set_ac_magnitude(0.0);
  b.vinp->set_dc(kVcm);
  b.vinp->set_ac_magnitude(0.0);
  if (b.vinn != nullptr) {
    b.vinn->set_dc(kVcm);
    b.vinn->set_ac_magnitude(0.0);
  }
}

/// Persistent evaluator: testbenches built once, re-targeted per design;
/// solver workspaces reused across designs. One instance per thread.
class FcSession final : public EvalSession {
 public:
  FcSession(const FoldedCascodeOta& problem, const ProcessVariation& pv)
      : problem_(&problem), pv_(pv) {}

  EvalResult evaluate(const Vec& x) override {
    EvalResult result;
    result.metrics = problem_->failure_metrics();
    result.simulation_ok = false;
    try {
      const FcParams p = unpack(x);
      if (!built_) {
        ug_ = build(p, /*unity_gain=*/true, pv_);
        ol_ = build(p, /*unity_gain=*/false, pv_);
        built_ = true;
      }
      apply(ug_, p);
      apply(ol_, p);

      // Unity-gain OP for the replica bias (see TwoStageOta for rationale).
      const DcResult ug_op = dc_.solve(ug_.net);
      if (!ug_op.converged) return result;
      const double v_out_op = Netlist::voltage(ug_op.x, ug_.out);

      ol_.vinn->set_dc(v_out_op);
      const DcResult op = dc_.solve(ol_.net);
      if (!op.converged) return result;

      const double power_mw = std::abs(ol_.vdd->branch_current(op.x)) * kVdd * 1e3;

      // Differential and common-mode sweeps share one factorization per
      // frequency (same G/C, different excitation).
      const auto freqs = log_frequency_grid(1.0, 10e9, 10);
      std::vector<CVec> excitations(2);
      ol_.vinp->set_ac_magnitude(0.5);
      ol_.vinn->set_ac_magnitude(-0.5);
      ol_.net.build_ac_rhs(excitations[0]);
      ol_.vinp->set_ac_magnitude(1.0);
      ol_.vinn->set_ac_magnitude(1.0);
      ol_.net.build_ac_rhs(excitations[1]);
      ol_.vinp->set_ac_magnitude(0.0);
      ol_.vinn->set_ac_magnitude(0.0);
      const auto sweeps = ac_.run_multi(ol_.net, op.x, freqs, excitations);
      const AcSweep& diff = sweeps[0];
      const double adm_db = dc_gain_db(diff, ol_.out);
      const auto ugf = unity_gain_frequency(diff, ol_.out);
      const auto pm = phase_margin_deg(diff, ol_.out);
      const double cmrr_db = adm_db - dc_gain_db(sweeps[1], ol_.out);

      const NoiseResult nres =
          noise_.run(ug_.net, ug_op.x, ug_.out, kGround, log_frequency_grid(1.0, 1e9, 8));
      const double noise_mv = nres.total_rms * 1e3;

      // Settling: 100 mV step in unity gain.
      constexpr double kStepT = 10e-9;
      constexpr double kStepV = 0.1;
      ug_.vinp->set_waveform(
          Waveform::pwl({{0.0, kVcm}, {kStepT, kVcm}, {kStepT + 1e-9, kVcm + kStepV}}));
      TranOptions topt;
      topt.t_stop = 400e-9;
      topt.dt = 0.5e-9;
      const TranResult tr = TranAnalysis(topt).run(ug_.net);
      double settling_ns = 1e4;
      if (tr.converged) {
        const auto wave = tr.node_waveform(ug_.out);
        const double final_v = wave.back();
        if (std::abs(final_v - (kVcm + kStepV)) < 0.05) {
          const auto st = settling_time(tr.time, wave, kStepT, final_v, 0.01 * kStepV);
          if (st) settling_ns = *st * 1e9;
        }
      }

      result.metrics[FoldedCascodeOta::kPowerMw] = power_mw;
      result.metrics[FoldedCascodeOta::kDcGainDb] = adm_db;
      result.metrics[FoldedCascodeOta::kCmrrDb] = cmrr_db;
      result.metrics[FoldedCascodeOta::kPhaseMarginDeg] = pm.value_or(0.0);
      result.metrics[FoldedCascodeOta::kSettlingNs] = settling_ns;
      result.metrics[FoldedCascodeOta::kUgfMhz] = ugf.value_or(0.0) * 1e-6;
      result.metrics[FoldedCascodeOta::kNoiseMvrms] = noise_mv;
      result.simulation_ok = true;
      return result;
    } catch (const std::exception&) {
      return result;
    }
  }

 private:
  const FoldedCascodeOta* problem_;
  ProcessVariation pv_;
  bool built_ = false;
  FcBench ug_, ol_;
  DcAnalysis dc_;
  AcAnalysis ac_;
  NoiseAnalysis noise_;
};

}  // namespace

FoldedCascodeOta::FoldedCascodeOta() {
  spec_.name = "folded_cascode_ota";
  spec_.target_name = "power";
  spec_.target_unit = "mW";
  spec_.target_weight = 0.01;
  spec_.constraints = {
      {"dc_gain", "dB", ConstraintKind::GreaterEqual, 75.0, 1.0},
      {"cmrr", "dB", ConstraintKind::GreaterEqual, 90.0, 1.0},
      {"phase_margin", "deg", ConstraintKind::GreaterEqual, 70.0, 1.0},
      {"settling_time", "ns", ConstraintKind::LessEqual, 60.0, 1.0},
      {"ugf", "MHz", ConstraintKind::GreaterEqual, 80.0, 1.0},
      {"output_noise", "mVrms", ConstraintKind::LessEqual, 1.0, 1.0},
  };
  lower_ = {0.18, 0.18, 0.18, 0.18, 0.18, 0.22, 0.22, 0.22, 0.22, 0.22, 100, 1, 1, 1};
  upper_ = {2, 2, 2, 2, 2, 150, 150, 150, 150, 150, 2000, 20, 20, 20};
  integer_.assign(14, false);
  for (int i = 11; i < 14; ++i) integer_[static_cast<std::size_t>(i)] = true;
}

std::vector<std::string> FoldedCascodeOta::parameter_names() const {
  return {"L1", "L2", "L3", "L4", "L5", "W1", "W2", "W3", "W4", "W5", "C", "N1", "N2", "N3"};
}

EvalResult FoldedCascodeOta::evaluate(const Vec& x) const {
  // Fresh session per call: thread-safe, identical to a persistent session.
  return FcSession(*this, variation_).evaluate(x);
}

std::unique_ptr<EvalSession> FoldedCascodeOta::make_session() const {
  return std::make_unique<FcSession>(*this, variation_);
}

EvalResult FoldedCascodeOta::evaluate_at(const Vec& x, const ProcessVariation& pv) const {
  validate_process_variation(pv);
  return FcSession(*this, pv).evaluate(x);
}

std::unique_ptr<EvalSession> FoldedCascodeOta::make_session_at(const ProcessVariation& pv) const {
  validate_process_variation(pv);
  return std::make_unique<FcSession>(*this, pv);
}

}  // namespace maopt::ckt
