#include "circuits/folded_cascode_ota.hpp"

#include <cmath>

#include "spice/dc_analysis.hpp"
#include "circuits/process_variation.hpp"
#include "spice/devices.hpp"
#include "spice/measure.hpp"
#include "spice/mosfet.hpp"
#include "spice/noise_analysis.hpp"
#include "spice/tran_analysis.hpp"

namespace maopt::ckt {

namespace {

using namespace maopt::spice;

constexpr double kVdd = 1.8;
constexpr double kVcm = 0.9;
constexpr double kIbias = 20e-6;
constexpr double kVcascN = 0.9;  // NMOS cascode gate bias
constexpr double kVcascP = 0.9;  // PMOS cascode gate bias

struct FcParams {
  double l[5];
  double w[5];
  double c;
  double n[3];
};

FcParams unpack(const Vec& x) {
  FcParams p{};
  for (int i = 0; i < 5; ++i) p.l[i] = x[static_cast<std::size_t>(i)] * 1e-6;
  for (int i = 0; i < 5; ++i) p.w[i] = x[static_cast<std::size_t>(5 + i)] * 1e-6;
  p.c = x[10] * 1e-15;
  for (int i = 0; i < 3; ++i) p.n[i] = x[static_cast<std::size_t>(11 + i)];
  return p;
}

struct FcBench {
  Netlist net;
  VSource* vdd = nullptr;
  VSource* vinp = nullptr;  ///< non-inverting (M1 gate)
  VSource* vinn = nullptr;  ///< inverting (M2 gate); null in unity-gain
  int out = 0;
};

FcBench build(const FcParams& p, bool unity_gain, const ProcessVariation& pv) {
  FcBench b;
  Netlist& n = b.net;
  const int vdd = n.node("vdd");
  const int inp = n.node("inp");
  const int out = n.node("out");
  const int inn = unity_gain ? out : n.node("inn");
  const int tailp = n.node("tailp");
  const int fa = n.node("fa");
  const int fb = n.node("fb");
  const int ma = n.node("ma");
  const int pa = n.node("pa");
  const int pb = n.node("pb");
  const int vbp = n.node("vbp");
  const int vbn = n.node("vbn");
  const int vcn = n.node("vcn");
  const int vcp = n.node("vcp");
  const int gnd = n.node("0");

  const MosModel nm = MosModel::nmos_180();
  const MosModel pm = MosModel::pmos_180();

  // Per-device deterministic mismatch draws (one per Mosfet add, in order).
  Rng var_rng(derive_seed(pv.seed, 0x5A5A));
  auto vary = [&](const MosModel& m) { return pv.enabled() ? vary_model(m, var_rng, pv) : m; };

  b.vdd = n.add<VSource>(vdd, gnd, Waveform::dc(kVdd));
  b.vinp = n.add<VSource>(inp, gnd, Waveform::dc(kVcm));
  if (!unity_gain) b.vinn = n.add<VSource>(inn, gnd, Waveform::dc(kVcm));
  n.add<VSource>(vcn, gnd, Waveform::dc(kVcascN));
  n.add<VSource>(vcp, gnd, Waveform::dc(kVcascP));

  // PMOS bias diode + tail; NMOS bias diode for the folding sinks.
  n.add<ISource>(vbp, gnd, Waveform::dc(kIbias));
  n.add<Mosfet>(vbp, vbp, vdd, vdd, vary(pm), p.w[1], p.l[1]);                 // PMOS diode
  n.add<Mosfet>(tailp, vbp, vdd, vdd, vary(pm), p.w[1], p.l[1], p.n[0]);       // M0 tail
  n.add<ISource>(vdd, vbn, Waveform::dc(kIbias));
  n.add<Mosfet>(vbn, vbn, gnd, gnd, vary(nm), p.w[2], p.l[2]);                 // NMOS diode

  n.add<Mosfet>(fa, inp, tailp, vdd, vary(pm), p.w[0], p.l[0]);                // M1
  n.add<Mosfet>(fb, inn, tailp, vdd, vary(pm), p.w[0], p.l[0]);                // M2

  n.add<Mosfet>(fa, vbn, gnd, gnd, vary(nm), p.w[2], p.l[2], p.n[1]);          // M3 sink
  n.add<Mosfet>(fb, vbn, gnd, gnd, vary(nm), p.w[2], p.l[2], p.n[1]);          // M4 sink

  n.add<Mosfet>(ma, vcn, fa, gnd, vary(nm), p.w[3], p.l[3]);                   // M5 cascode
  n.add<Mosfet>(out, vcn, fb, gnd, vary(nm), p.w[3], p.l[3]);                  // M6 cascode

  // High-swing cascode PMOS mirror: gate of M7/M8 tied to the diode-side
  // cascode output `ma`.
  n.add<Mosfet>(pa, ma, vdd, vdd, vary(pm), p.w[4], p.l[4], p.n[2]);           // M7
  n.add<Mosfet>(pb, ma, vdd, vdd, vary(pm), p.w[4], p.l[4], p.n[2]);           // M8
  n.add<Mosfet>(ma, vcp, pa, vdd, vary(pm), p.w[4], p.l[4], p.n[2]);           // M9 cascode
  n.add<Mosfet>(out, vcp, pb, vdd, vary(pm), p.w[4], p.l[4], p.n[2]);          // M10 cascode

  n.add<Capacitor>(out, gnd, p.c);

  b.out = out;
  n.prepare();
  return b;
}

}  // namespace

FoldedCascodeOta::FoldedCascodeOta() {
  spec_.name = "folded_cascode_ota";
  spec_.target_name = "power";
  spec_.target_unit = "mW";
  spec_.target_weight = 0.01;
  spec_.constraints = {
      {"dc_gain", "dB", ConstraintKind::GreaterEqual, 75.0, 1.0},
      {"cmrr", "dB", ConstraintKind::GreaterEqual, 90.0, 1.0},
      {"phase_margin", "deg", ConstraintKind::GreaterEqual, 70.0, 1.0},
      {"settling_time", "ns", ConstraintKind::LessEqual, 60.0, 1.0},
      {"ugf", "MHz", ConstraintKind::GreaterEqual, 80.0, 1.0},
      {"output_noise", "mVrms", ConstraintKind::LessEqual, 1.0, 1.0},
  };
  lower_ = {0.18, 0.18, 0.18, 0.18, 0.18, 0.22, 0.22, 0.22, 0.22, 0.22, 100, 1, 1, 1};
  upper_ = {2, 2, 2, 2, 2, 150, 150, 150, 150, 150, 2000, 20, 20, 20};
  integer_.assign(14, false);
  for (int i = 11; i < 14; ++i) integer_[static_cast<std::size_t>(i)] = true;
}

std::vector<std::string> FoldedCascodeOta::parameter_names() const {
  return {"L1", "L2", "L3", "L4", "L5", "W1", "W2", "W3", "W4", "W5", "C", "N1", "N2", "N3"};
}

EvalResult FoldedCascodeOta::evaluate(const Vec& x) const {
  EvalResult result;
  result.metrics = failure_metrics();
  result.simulation_ok = false;
  try {
    const FcParams p = unpack(x);

    // Unity-gain OP for the replica bias (see TwoStageOta for rationale).
    FcBench ug = build(p, /*unity_gain=*/true, variation_);
    DcAnalysis dc;
    const DcResult ug_op = dc.solve(ug.net);
    if (!ug_op.converged) return result;
    const double v_out_op = Netlist::voltage(ug_op.x, ug.out);

    FcBench ol = build(p, /*unity_gain=*/false, variation_);
    ol.vinn->set_dc(v_out_op);
    const DcResult op = dc.solve(ol.net);
    if (!op.converged) return result;

    const double power_mw = std::abs(ol.vdd->branch_current(op.x)) * kVdd * 1e3;

    const auto freqs = log_frequency_grid(1.0, 10e9, 10);
    AcAnalysis ac;
    ol.vinp->set_ac_magnitude(0.5);
    ol.vinn->set_ac_magnitude(-0.5);
    const AcSweep diff = ac.run(ol.net, op.x, freqs);
    const double adm_db = dc_gain_db(diff, ol.out);
    const auto ugf = unity_gain_frequency(diff, ol.out);
    const auto pm = phase_margin_deg(diff, ol.out);

    ol.vinp->set_ac_magnitude(1.0);
    ol.vinn->set_ac_magnitude(1.0);
    const AcSweep cm = ac.run(ol.net, op.x, freqs);
    const double cmrr_db = adm_db - dc_gain_db(cm, ol.out);
    ol.vinp->set_ac_magnitude(0.0);
    ol.vinn->set_ac_magnitude(0.0);

    NoiseAnalysis noise;
    const NoiseResult nres =
        noise.run(ug.net, ug_op.x, ug.out, kGround, log_frequency_grid(1.0, 1e9, 8));
    const double noise_mv = nres.total_rms * 1e3;

    // Settling: 100 mV step in unity gain.
    constexpr double kStepT = 10e-9;
    constexpr double kStepV = 0.1;
    ug.vinp->set_waveform(
        Waveform::pwl({{0.0, kVcm}, {kStepT, kVcm}, {kStepT + 1e-9, kVcm + kStepV}}));
    TranOptions topt;
    topt.t_stop = 400e-9;
    topt.dt = 0.5e-9;
    const TranResult tr = TranAnalysis(topt).run(ug.net);
    double settling_ns = 1e4;
    if (tr.converged) {
      const auto wave = tr.node_waveform(ug.out);
      const double final_v = wave.back();
      if (std::abs(final_v - (kVcm + kStepV)) < 0.05) {
        const auto st = settling_time(tr.time, wave, kStepT, final_v, 0.01 * kStepV);
        if (st) settling_ns = *st * 1e9;
      }
    }

    result.metrics[kPowerMw] = power_mw;
    result.metrics[kDcGainDb] = adm_db;
    result.metrics[kCmrrDb] = cmrr_db;
    result.metrics[kPhaseMarginDeg] = pm.value_or(0.0);
    result.metrics[kSettlingNs] = settling_ns;
    result.metrics[kUgfMhz] = ugf.value_or(0.0) * 1e-6;
    result.metrics[kNoiseMvrms] = noise_mv;
    result.simulation_ok = true;
    return result;
  } catch (const std::exception&) {
    return result;
  }
}

}  // namespace maopt::ckt
