#include "circuits/fom.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/statistics.hpp"

namespace maopt::ckt {

FomEvaluator::FomEvaluator(const SizingProblem& problem, double f0_reference,
                           FomSemantics semantics)
    : problem_(&problem), f0_ref_(f0_reference), semantics_(semantics) {
  if (!(f0_reference > 0.0)) throw std::invalid_argument("FomEvaluator: f0_reference must be > 0");
}

FomEvaluator FomEvaluator::fit_reference(const SizingProblem& problem,
                                         const std::vector<Vec>& metric_rows) {
  if (metric_rows.empty()) throw std::invalid_argument("FomEvaluator: empty metric set");
  std::vector<double> f0s;
  f0s.reserve(metric_rows.size());
  for (const auto& m : metric_rows) f0s.push_back(std::abs(m[0]));
  double ref = median(f0s);
  if (ref < 1e-12) ref = 1.0;
  return FomEvaluator(problem, ref);
}

double FomEvaluator::operator()(std::span<const double> metrics) const {
  const auto& spec = problem_->spec();
  if (metrics.size() != problem_->num_metrics())
    throw std::invalid_argument("FomEvaluator: metric count mismatch");
  double g = spec.target_weight * metrics[0] / f0_ref_;
  for (std::size_t i = 0; i < spec.constraints.size(); ++i) {
    const auto& c = spec.constraints[i];
    const double term =
        semantics_ == FomSemantics::Corrected
            ? normalized_violation(c, metrics[i + 1])
            : std::abs(metrics[i + 1] - c.bound) / std::max(std::abs(c.bound), 1e-30);
    g += std::min(1.0, c.weight * term);
  }
  return g;
}

Vec FomEvaluator::gradient(std::span<const double> metrics) const {
  const auto& spec = problem_->spec();
  Vec grad(metrics.size(), 0.0);
  grad[0] = spec.target_weight / f0_ref_;
  for (std::size_t i = 0; i < spec.constraints.size(); ++i) {
    const auto& c = spec.constraints[i];
    const double denom = std::max(std::abs(c.bound), 1e-30);
    if (semantics_ == FomSemantics::Corrected) {
      const double viol = normalized_violation(c, metrics[i + 1]);
      if (viol <= 0.0) continue;             // satisfied: flat
      if (c.weight * viol >= 1.0) continue;  // clamped at 1: flat
      grad[i + 1] = (c.kind == ConstraintKind::GreaterEqual ? -1.0 : 1.0) * c.weight / denom;
    } else {
      const double dev = std::abs(metrics[i + 1] - c.bound) / denom;
      if (c.weight * dev >= 1.0) continue;   // clamped
      if (dev <= 0.0) continue;              // kink at f == c
      grad[i + 1] = (metrics[i + 1] > c.bound ? 1.0 : -1.0) * c.weight / denom;
    }
  }
  return grad;
}

}  // namespace maopt::ckt
