// Fault-tolerant batched variation sweeps — the robustness engine.
//
// A VariationSweepProblem decorates a SizingProblem so that one "evaluation"
// simulates the design under a fixed list of process-variation variants
// (corners, or seeded Monte Carlo mismatch instances) and aggregates the
// per-variant metrics into one EvalResult an unmodified optimizer can
// consume. It replaces the old serial, const-unsafe sweep (mutate the inner
// problem's variation state, evaluate, reset) with the thread-safe
// evaluate_at(x, pv) primitive, and adds the three things population-scale
// robustness workloads need:
//
//   * Batched execution. When the wrapped problem implements SweepBackend
//     (eval::EvalService does), all variants of one sweep are fanned over the
//     backend's worker pool in a single batch — with per-variant cache keys,
//     so a corner result computed once is never re-simulated. Otherwise the
//     sweep runs serially through evaluate_at.
//   * Variance-aware aggregation: worst-case across variants (robust corner
//     optimization), mean + k·sigma (design centering), or an empirical
//     yield quantile (the value a target fraction of instances achieves).
//   * Explicit partial-failure semantics. When a subset of the variant
//     simulations fails (timeout, NaN, injected fault), the aggregate
//     degrades deterministically per a configured SweepFailurePolicy instead
//     of poisoning the whole evaluation, and the provenance (degraded flag,
//     failed/total counts) rides along in the EvalResult and in corner-tagged
//     RunObserver sweep events.
//
// Determinism contract: with circuit breakers disabled (the default), the
// aggregate for a design is a pure function of (design, variant list,
// policy) — independent of thread scheduling, caching, and call order — so
// optimizer trajectories driven through a sweep problem replay bit-identical
// from checkpoints. Breakers keep per-variant mutable state across calls;
// they remain deterministic under a sequential driver but are scheduling-
// dependent when the optimizer evaluates designs concurrently, which is why
// they are opt-in.
//
// RobustProblem (corners) and YieldProblem (Monte Carlo mismatch) in
// robust_problem.hpp are the two concrete sweeps.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "circuits/sizing_problem.hpp"
#include "common/thread_annotations.hpp"
#include "obs/observer.hpp"

namespace maopt::ckt {

/// One variant of a sweep: a pinned variation plus its display label, which
/// tags the variant's telemetry events ("SS", "mc17", ...).
struct SweepVariant {
  ProcessVariation pv;
  std::string label;
};

/// How per-variant metric vectors combine into the aggregate EvalResult.
enum class RobustAggregation : std::uint8_t {
  /// Worst value of every metric across variants: the target's maximum (we
  /// minimize f0) and each constraint's value closest to / deepest into
  /// violation. Feasible aggregate <=> feasible at every variant.
  WorstCase = 0,
  /// mean + k·sigma per metric, signed toward the violating direction
  /// (population sigma). A variance-aware middle ground between nominal and
  /// worst-case: penalizes spread without letting one outlier dominate.
  KSigma = 1,
  /// Empirical per-metric quantile at `yield_target`: the value at least
  /// that fraction of variants achieves, per constraint direction. A
  /// feasible aggregate means every constraint is (marginally) met by >=
  /// yield_target of the variants.
  YieldQuantile = 2,
};
const char* to_string(RobustAggregation aggregation);

/// What the aggregate reports when a strict subset of variants fails.
/// (When ALL variants fail, every policy reports a failed evaluation with
/// the inner problem's failure_metrics.)
enum class SweepFailurePolicy : std::uint8_t {
  /// Any failed variant fails the whole evaluation (the legacy RobustProblem
  /// behavior). The full batch is still executed — budgets stay predictable
  /// and the telemetry still shows which variants failed.
  FailFast = 0,
  /// A failed variant contributes the inner problem's failure_metrics to the
  /// aggregation, so worst-case/k-sigma aggregates are pulled strongly (but
  /// finitely and deterministically) toward infeasibility. The evaluation
  /// itself stays usable (simulation_ok = true, degraded = true).
  PenalizeFailedVariant = 1,
  /// Aggregate over the surviving variants only, marked degraded — an
  /// optimistic bound for WorstCase (the failed variant might have been the
  /// worst), so the result is flagged for downstream consumers. Fails the
  /// evaluation when fewer than `min_ok_fraction` of variants survive.
  ConservativeBound = 2,
};
const char* to_string(SweepFailurePolicy policy);

/// Per-variant circuit breaker: after `trip_after` consecutive failures of
/// one variant (across sweeps), that variant is skipped for `cooldown`
/// sweeps, then retried half-open (one success closes the breaker, one
/// failure re-trips it). Skipped variants count as failed for the policy.
/// trip_after = 0 disables breakers entirely — the default, because breaker
/// state is shared across calls and therefore scheduling-dependent when the
/// driver evaluates designs concurrently (see file header).
struct SweepBreakerConfig {
  int trip_after = 0;
  int cooldown = 4;
};

struct SweepPolicyConfig {
  RobustAggregation aggregation = RobustAggregation::WorstCase;
  SweepFailurePolicy failure_policy = SweepFailurePolicy::PenalizeFailedVariant;
  double k_sigma = 3.0;        ///< KSigma: the k in mean + k·sigma
  double yield_target = 0.9;   ///< YieldQuantile: fraction in (0, 1]
  double min_ok_fraction = 0.5;  ///< ConservativeBound: survival floor
  SweepBreakerConfig breaker;
};

/// Monotonic engine totals (atomic snapshot; variants_* count individual
/// variant evaluations across all sweeps).
struct SweepStats {
  std::uint64_t sweeps = 0;
  std::uint64_t degraded_sweeps = 0;  ///< partial failure shaped the result
  std::uint64_t failed_sweeps = 0;    ///< aggregate reported simulation_ok = false
  std::uint64_t variants_ok = 0;
  std::uint64_t variants_failed = 0;
  std::uint64_t variants_skipped = 0;  ///< suppressed by an open breaker

  /// One-line summary, e.g. "12 sweeps (2 degraded, 1 failed), variants:
  /// 52 ok / 7 failed / 1 skipped".
  std::string report() const;
};

/// Batched sweep execution, implemented by eval::EvalService: evaluates one
/// design under every variation in `pvs`, positionally, fanning the variants
/// over the implementation's worker pool. A variant whose simulation throws
/// must be reported as a failed EvalResult (simulation_ok = false), never by
/// propagating the exception — partial failure is the expected case.
/// Defined here (not in eval/) so the circuits layer can depend on it
/// without a library cycle.
class SweepBackend {
 public:
  virtual ~SweepBackend() = default;
  virtual std::vector<EvalResult> evaluate_variants(
      const Vec& x, std::span<const ProcessVariation> pvs) const = 0;
};

class VariationSweepProblem : public SizingProblem {
 public:
  /// Wraps `inner` (not owned; must outlive this object). `kind` labels the
  /// sweep's telemetry events ("corners", "monte-carlo"). Requires a
  /// non-empty variant list, a variation-capable inner problem whenever any
  /// variant's variation is enabled, and valid policy parameters (k_sigma
  /// finite, yield_target in (0,1], min_ok_fraction in [0,1], breaker
  /// cooldown >= 1 when enabled); throws std::invalid_argument otherwise.
  /// When `inner` implements SweepBackend (eval::EvalService), sweeps run
  /// batched through it; otherwise serially via inner->evaluate_at.
  VariationSweepProblem(const SizingProblem& inner, std::vector<SweepVariant> variants,
                        SweepPolicyConfig policy, std::string kind);

  const ProblemSpec& spec() const override { return inner_->spec(); }
  std::size_t dim() const override { return inner_->dim(); }
  const Vec& lower_bounds() const override { return inner_->lower_bounds(); }
  const Vec& upper_bounds() const override { return inner_->upper_bounds(); }
  const std::vector<bool>& integer_mask() const override { return inner_->integer_mask(); }
  std::vector<std::string> parameter_names() const override { return inner_->parameter_names(); }
  Vec failure_metrics() const override { return inner_->failure_metrics(); }
  std::uint64_t content_fingerprint() const override { return inner_->content_fingerprint(); }

  /// One full sweep: evaluates every (non-skipped) variant, applies the
  /// failure policy, aggregates, and stamps the provenance fields
  /// (degraded / variants_failed / variants_total) into the result.
  /// Thread-safe whenever the inner problem's evaluate_at is; with breakers
  /// disabled the result is a pure function of (x, variants, policy).
  EvalResult evaluate(const Vec& x) const override;

  /// Attaches a telemetry sink for sweep brackets (may be null to detach).
  /// Events are emitted atomically per sweep — a whole
  /// SweepStarted / SweepVariantEvaluated* / SweepCompleted bracket under one
  /// mutex — so brackets never interleave even when sweeps run concurrently.
  /// The sink must be thread-safe under a concurrent driver (JsonlObserver
  /// and MulticastObserver are) and must outlive this object.
  void set_observer(obs::RunObserver* observer) { observer_ = observer; }

  SweepStats stats() const;
  std::size_t num_variants() const { return variants_.size(); }
  const std::vector<SweepVariant>& variants() const { return variants_; }
  const SweepPolicyConfig& policy() const { return policy_; }
  const SizingProblem& inner() const { return *inner_; }
  /// True when sweeps are batched through a SweepBackend.
  bool batched() const { return backend_ != nullptr; }

 private:
  struct BreakerState {
    int consecutive_failures = 0;
    bool open = false;
    int cooldown_left = 0;
  };

  /// Aggregates the contributing metric vectors per `policy_.aggregation`.
  Vec aggregate(const std::vector<const Vec*>& contributing) const;

  const SizingProblem* inner_;
  const SweepBackend* backend_;  ///< inner_ when it batches; else null
  std::vector<SweepVariant> variants_;
  SweepPolicyConfig policy_;
  std::string kind_;

  obs::RunObserver* observer_ = nullptr;

  /// Serializes whole telemetry brackets and owns the sweep-id sequence, so
  /// ids are monotone in emission order. Leaf lock.
  mutable Mutex emit_mutex_;
  mutable std::uint64_t next_sweep_id_ MAOPT_GUARDED_BY(emit_mutex_) = 0;

  /// Breaker state per variant; only touched when breakers are enabled (so
  /// the default configuration takes no lock on the hot path). Leaf lock.
  mutable Mutex breaker_mutex_;
  mutable std::vector<BreakerState> breakers_ MAOPT_GUARDED_BY(breaker_mutex_);

  mutable std::atomic<std::uint64_t> sweeps_{0};
  mutable std::atomic<std::uint64_t> degraded_sweeps_{0};
  mutable std::atomic<std::uint64_t> failed_sweeps_{0};
  mutable std::atomic<std::uint64_t> variants_ok_{0};
  mutable std::atomic<std::uint64_t> variants_failed_{0};
  mutable std::atomic<std::uint64_t> variants_skipped_{0};
};

}  // namespace maopt::ckt
