#include "circuits/three_stage_tia.hpp"

#include <cmath>

#include "spice/dc_analysis.hpp"
#include "circuits/process_variation.hpp"
#include "spice/devices.hpp"
#include "spice/measure.hpp"
#include "spice/mosfet.hpp"
#include "spice/noise_analysis.hpp"

namespace maopt::ckt {

namespace {

using namespace maopt::spice;

constexpr double kVdd = 1.8;
constexpr double kCpd = 200e-15;    // photodiode capacitance
constexpr double kRbuf = 10e3;      // follower bias resistor

struct TiaParams {
  double l[5];
  double w[5];
  double r;
  double cf;
  double n[3];
};

TiaParams unpack(const Vec& x) {
  TiaParams p{};
  for (int i = 0; i < 5; ++i) p.l[i] = x[static_cast<std::size_t>(i)] * 1e-6;
  for (int i = 0; i < 5; ++i) p.w[i] = x[static_cast<std::size_t>(5 + i)] * 1e-6;
  p.r = x[10] * 1e3;
  p.cf = x[11] * 1e-15;
  for (int i = 0; i < 3; ++i) p.n[i] = x[static_cast<std::size_t>(12 + i)];
  return p;
}

struct TiaBench {
  Netlist net;
  VSource* vdd = nullptr;
  ISource* iin = nullptr;   // closed-loop bench only
  VSource* vin = nullptr;   // open-loop bench only
  int in = 0;
  int out = 0;
};

/// Core amplifier shared by both benches; returns the (input, output) nodes.
std::pair<int, int> build_amp(Netlist& n, const TiaParams& p, int vdd, int gnd,
                              const ProcessVariation& pv) {
  const int in = n.node("in");
  const int s1 = n.node("s1");
  const int s2 = n.node("s2");
  const int s3 = n.node("s3");
  const int out = n.node("out");

  const MosModel nm = MosModel::nmos_180();
  const MosModel pm = MosModel::pmos_180();

  // Per-device deterministic mismatch draws (one per Mosfet add, in order).
  Rng var_rng(derive_seed(pv.seed, 0x5A5A));
  auto vary = [&](const MosModel& m) { return pv.enabled() ? vary_model(m, var_rng, pv) : m; };

  n.add<Mosfet>(s1, in, gnd, gnd, vary(nm), p.w[0], p.l[0], p.n[0]);   // M1
  n.add<Mosfet>(s1, s1, vdd, vdd, vary(pm), p.w[3], p.l[3]);           // load 1 (diode)
  n.add<Mosfet>(s2, s1, gnd, gnd, vary(nm), p.w[1], p.l[1], p.n[1]);   // M2
  n.add<Mosfet>(s2, s2, vdd, vdd, vary(pm), p.w[3], p.l[3]);           // load 2
  n.add<Mosfet>(s3, s2, gnd, gnd, vary(nm), p.w[2], p.l[2], p.n[2]);   // M3
  n.add<Mosfet>(s3, s3, vdd, vdd, vary(pm), p.w[3], p.l[3]);           // load 3
  n.add<Mosfet>(vdd, s3, out, gnd, vary(nm), p.w[4], p.l[4]);          // follower
  n.add<Resistor>(out, gnd, kRbuf);
  return {in, out};
}

TiaBench build_closed_loop(const TiaParams& p, const ProcessVariation& pv) {
  TiaBench b;
  Netlist& n = b.net;
  const int vdd = n.node("vdd");
  const int gnd = n.node("0");
  b.vdd = n.add<VSource>(vdd, gnd, Waveform::dc(kVdd));
  const auto [in, out] = build_amp(n, p, vdd, gnd, pv);
  b.in = in;
  b.out = out;
  n.add<Resistor>(out, in, p.r);
  n.add<Capacitor>(out, in, p.cf);
  n.add<Capacitor>(in, gnd, kCpd);
  b.iin = n.add<ISource>(gnd, in, Waveform::dc(0.0));
  n.prepare();
  return b;
}

/// Replica-bias open-loop bench: the input gate is driven by a voltage
/// source at the closed-loop bias `v_in_op`; the feedback network loads the
/// output but terminates into a fixed replica source instead of the input.
TiaBench build_open_loop(const TiaParams& p, double v_in_op, const ProcessVariation& pv) {
  TiaBench b;
  Netlist& n = b.net;
  const int vdd = n.node("vdd");
  const int gnd = n.node("0");
  b.vdd = n.add<VSource>(vdd, gnd, Waveform::dc(kVdd));
  const auto [in, out] = build_amp(n, p, vdd, gnd, pv);
  b.in = in;
  b.out = out;
  b.vin = n.add<VSource>(in, gnd, Waveform::dc(v_in_op));
  const int rep = n.node("replica");
  n.add<VSource>(rep, gnd, Waveform::dc(v_in_op));
  n.add<Resistor>(out, rep, p.r);
  n.add<Capacitor>(out, rep, p.cf);
  n.prepare();
  return b;
}

}  // namespace

ThreeStageTia::ThreeStageTia() {
  spec_.name = "three_stage_tia";
  spec_.target_name = "power";
  spec_.target_unit = "mW";
  spec_.target_weight = 0.01;  // w0: keeps the target term below any single clamped penalty
  spec_.constraints = {
      // Eq. 8 bounds rescaled to this substrate's level-1 devices so that the
      // joint feasible region keeps the paper's hardness (random sampling
      // essentially never satisfies all three at once; see EXPERIMENTS.md).
      {"zt_dc_gain", "dBOhm", ConstraintKind::GreaterEqual, 95.0, 1.0},
      {"ugf", "GHz", ConstraintKind::GreaterEqual, 1.7, 1.0},
      {"input_noise", "pA/sqrtHz", ConstraintKind::LessEqual, 2.0, 1.0},
  };
  lower_ = {0.18, 0.18, 0.18, 0.18, 0.18, 0.22, 0.22, 0.22, 0.22, 0.22, 0.1, 100, 1, 1, 1};
  upper_ = {2, 2, 2, 2, 2, 150, 150, 150, 150, 150, 100, 2000, 20, 20, 20};
  integer_.assign(15, false);
  for (int i = 12; i < 15; ++i) integer_[static_cast<std::size_t>(i)] = true;
}

std::vector<std::string> ThreeStageTia::parameter_names() const {
  return {"L1", "L2", "L3", "L4", "L5", "W1", "W2", "W3", "W4", "W5", "R", "Cf", "N1", "N2", "N3"};
}

EvalResult ThreeStageTia::evaluate(const Vec& x) const {
  EvalResult result;
  result.metrics = failure_metrics();
  result.simulation_ok = false;
  try {
    const TiaParams p = unpack(x);

    TiaBench cl = build_closed_loop(p, variation_);
    DcAnalysis dc;
    const DcResult op = dc.solve(cl.net);
    if (!op.converged) return result;

    const double power_mw = std::abs(cl.vdd->branch_current(op.x)) * kVdd * 1e3;
    const double v_in_op = Netlist::voltage(op.x, cl.in);

    // Transimpedance: 1 A AC input current -> V(out) is Z_T directly.
    const auto freqs = log_frequency_grid(1e3, 100e9, 10);
    AcAnalysis ac;
    cl.iin->set_ac_magnitude(1.0);
    const AcSweep zt = ac.run(cl.net, op.x, freqs);
    const double zt_db = dc_gain_db(zt, cl.out);

    // Input-referred current noise at 10 MHz: S_in = S_out / |Z_T|^2.
    NoiseAnalysis noise;
    const std::vector<double> nf = {10e6};
    const NoiseResult nres = noise.run(cl.net, op.x, cl.out, kGround, nf);
    const double zt_10m = magnitude_at(zt, cl.out, 10e6);
    const double in_noise_pa =
        std::sqrt(nres.output_psd[0]) / std::max(zt_10m, 1e-12) * 1e12;

    // Open-loop amplifier UGF via the replica-bias bench.
    TiaBench olb = build_open_loop(p, v_in_op, variation_);
    const DcResult ol_op = dc.solve(olb.net);
    double ugf_ghz = 0.0;
    if (ol_op.converged) {
      olb.vin->set_ac_magnitude(1.0);
      const AcSweep av = ac.run(olb.net, ol_op.x, freqs);
      ugf_ghz = unity_gain_frequency(av, olb.out).value_or(0.0) * 1e-9;
    }

    result.metrics[kPowerMw] = power_mw;
    result.metrics[kZtDbOhm] = zt_db;
    result.metrics[kUgfGhz] = ugf_ghz;
    result.metrics[kInputNoisePa] = in_noise_pa;
    result.simulation_ok = true;
    return result;
  } catch (const std::exception&) {
    return result;
  }
}

}  // namespace maopt::ckt
