#include "circuits/three_stage_tia.hpp"

#include <array>
#include <cmath>

#include "spice/dc_analysis.hpp"
#include "circuits/process_variation.hpp"
#include "spice/devices.hpp"
#include "spice/measure.hpp"
#include "spice/mosfet.hpp"
#include "spice/noise_analysis.hpp"

namespace maopt::ckt {

namespace {

using namespace maopt::spice;

constexpr double kVdd = 1.8;
constexpr double kCpd = 200e-15;    // photodiode capacitance
constexpr double kRbuf = 10e3;      // follower bias resistor

struct TiaParams {
  double l[5];
  double w[5];
  double r;
  double cf;
  double n[3];
};

TiaParams unpack(const Vec& x) {
  TiaParams p{};
  for (int i = 0; i < 5; ++i) p.l[i] = x[static_cast<std::size_t>(i)] * 1e-6;
  for (int i = 0; i < 5; ++i) p.w[i] = x[static_cast<std::size_t>(5 + i)] * 1e-6;
  p.r = x[10] * 1e3;
  p.cf = x[11] * 1e-15;
  for (int i = 0; i < 3; ++i) p.n[i] = x[static_cast<std::size_t>(12 + i)];
  return p;
}

struct FetGeom {
  double w, l, m;
};

/// Geometry of the core amp's Mosfets, in build_amp order:
/// M1, load1, M2, load2, M3, load3, follower.
std::array<FetGeom, 7> fet_geoms(const TiaParams& p) {
  return {{{p.w[0], p.l[0], p.n[0]},
           {p.w[3], p.l[3], 1.0},
           {p.w[1], p.l[1], p.n[1]},
           {p.w[3], p.l[3], 1.0},
           {p.w[2], p.l[2], p.n[2]},
           {p.w[3], p.l[3], 1.0},
           {p.w[4], p.l[4], 1.0}}};
}

struct TiaBench {
  Netlist net;
  VSource* vdd = nullptr;
  ISource* iin = nullptr;   // closed-loop bench only
  VSource* vin = nullptr;   // open-loop bench only
  VSource* vrep = nullptr;  // open-loop bench only (replica bias)
  std::array<Mosfet*, 7> fets{};
  Resistor* rf = nullptr;
  Capacitor* cf = nullptr;
  int in = 0;
  int out = 0;
};

/// Core amplifier shared by both benches; returns the (input, output) nodes.
std::pair<int, int> build_amp(TiaBench& b, const TiaParams& p, int vdd, int gnd,
                              const ProcessVariation& pv) {
  Netlist& n = b.net;
  const int in = n.node("in");
  const int s1 = n.node("s1");
  const int s2 = n.node("s2");
  const int s3 = n.node("s3");
  const int out = n.node("out");

  const MosModel nm = MosModel::nmos_180();
  const MosModel pm = MosModel::pmos_180();

  // Per-device deterministic mismatch draws (one per Mosfet add, in order).
  Rng var_rng(derive_seed(pv.seed, 0x5A5A));
  auto vary = [&](const MosModel& m) { return pv.enabled() ? vary_model(m, var_rng, pv) : m; };

  const auto fg = fet_geoms(p);
  b.fets[0] = n.add<Mosfet>(s1, in, gnd, gnd, vary(nm), fg[0].w, fg[0].l, fg[0].m);   // M1
  b.fets[1] = n.add<Mosfet>(s1, s1, vdd, vdd, vary(pm), fg[1].w, fg[1].l);            // load 1 (diode)
  b.fets[2] = n.add<Mosfet>(s2, s1, gnd, gnd, vary(nm), fg[2].w, fg[2].l, fg[2].m);   // M2
  b.fets[3] = n.add<Mosfet>(s2, s2, vdd, vdd, vary(pm), fg[3].w, fg[3].l);            // load 2
  b.fets[4] = n.add<Mosfet>(s3, s2, gnd, gnd, vary(nm), fg[4].w, fg[4].l, fg[4].m);   // M3
  b.fets[5] = n.add<Mosfet>(s3, s3, vdd, vdd, vary(pm), fg[5].w, fg[5].l);            // load 3
  b.fets[6] = n.add<Mosfet>(vdd, s3, out, gnd, vary(nm), fg[6].w, fg[6].l);           // follower
  n.add<Resistor>(out, gnd, kRbuf);
  return {in, out};
}

TiaBench build_closed_loop(const TiaParams& p, const ProcessVariation& pv) {
  TiaBench b;
  Netlist& n = b.net;
  const int vdd = n.node("vdd");
  const int gnd = n.node("0");
  b.vdd = n.add<VSource>(vdd, gnd, Waveform::dc(kVdd));
  const auto [in, out] = build_amp(b, p, vdd, gnd, pv);
  b.in = in;
  b.out = out;
  b.rf = n.add<Resistor>(out, in, p.r);
  b.cf = n.add<Capacitor>(out, in, p.cf);
  n.add<Capacitor>(in, gnd, kCpd);
  b.iin = n.add<ISource>(gnd, in, Waveform::dc(0.0));
  n.prepare();
  return b;
}

/// Replica-bias open-loop bench: the input gate is driven by a voltage
/// source at the closed-loop bias `v_in_op`; the feedback network loads the
/// output but terminates into a fixed replica source instead of the input.
TiaBench build_open_loop(const TiaParams& p, double v_in_op, const ProcessVariation& pv) {
  TiaBench b;
  Netlist& n = b.net;
  const int vdd = n.node("vdd");
  const int gnd = n.node("0");
  b.vdd = n.add<VSource>(vdd, gnd, Waveform::dc(kVdd));
  const auto [in, out] = build_amp(b, p, vdd, gnd, pv);
  b.in = in;
  b.out = out;
  b.vin = n.add<VSource>(in, gnd, Waveform::dc(v_in_op));
  const int rep = n.node("replica");
  b.vrep = n.add<VSource>(rep, gnd, Waveform::dc(v_in_op));
  b.rf = n.add<Resistor>(out, rep, p.r);
  b.cf = n.add<Capacitor>(out, rep, p.cf);
  n.prepare();
  return b;
}

/// Re-targets an existing bench at a new design, resetting all mutable
/// source state. The open-loop input/replica bias is design-dependent and is
/// applied at the use site once the closed-loop OP is known.
void apply(TiaBench& b, const TiaParams& p) {
  const auto fg = fet_geoms(p);
  for (std::size_t i = 0; i < fg.size(); ++i) b.fets[i]->set_geometry(fg[i].w, fg[i].l, fg[i].m);
  b.rf->set_resistance(p.r);
  b.cf->set_capacitance(p.cf);
  b.vdd->set_dc(kVdd);
  b.vdd->set_ac_magnitude(0.0);
  if (b.iin != nullptr) {
    b.iin->set_dc(0.0);
    b.iin->set_ac_magnitude(0.0);
  }
  if (b.vin != nullptr) b.vin->set_ac_magnitude(0.0);
}

/// Persistent evaluator: testbenches built once, re-targeted per design;
/// solver workspaces reused across designs. One instance per thread.
class TiaSession final : public EvalSession {
 public:
  TiaSession(const ThreeStageTia& problem, const ProcessVariation& pv)
      : problem_(&problem), pv_(pv) {}

  EvalResult evaluate(const Vec& x) override {
    EvalResult result;
    result.metrics = problem_->failure_metrics();
    result.simulation_ok = false;
    try {
      const TiaParams p = unpack(x);
      if (!cl_built_) {
        cl_ = build_closed_loop(p, pv_);
        cl_built_ = true;
      }
      apply(cl_, p);

      const DcResult op = dc_.solve(cl_.net);
      if (!op.converged) return result;

      const double power_mw = std::abs(cl_.vdd->branch_current(op.x)) * kVdd * 1e3;
      const double v_in_op = Netlist::voltage(op.x, cl_.in);

      // Transimpedance: 1 A AC input current -> V(out) is Z_T directly.
      const auto freqs = log_frequency_grid(1e3, 100e9, 10);
      cl_.iin->set_ac_magnitude(1.0);
      const AcSweep zt = ac_.run(cl_.net, op.x, freqs);
      const double zt_db = dc_gain_db(zt, cl_.out);

      // Input-referred current noise at 10 MHz: S_in = S_out / |Z_T|^2.
      const std::vector<double> nf = {10e6};
      const NoiseResult nres = noise_.run(cl_.net, op.x, cl_.out, kGround, nf);
      const double zt_10m = magnitude_at(zt, cl_.out, 10e6);
      const double in_noise_pa =
          std::sqrt(nres.output_psd[0]) / std::max(zt_10m, 1e-12) * 1e12;

      // Open-loop amplifier UGF via the replica-bias bench. The bench is
      // built lazily with the first design's bias; later designs re-point the
      // input/replica sources at their own v_in_op.
      if (!ol_built_) {
        ol_ = build_open_loop(p, v_in_op, pv_);
        ol_built_ = true;
      }
      apply(ol_, p);
      ol_.vin->set_dc(v_in_op);
      ol_.vrep->set_dc(v_in_op);
      const DcResult ol_op = dc_.solve(ol_.net);
      double ugf_ghz = 0.0;
      if (ol_op.converged) {
        ol_.vin->set_ac_magnitude(1.0);
        const AcSweep av = ac_.run(ol_.net, ol_op.x, freqs);
        ugf_ghz = unity_gain_frequency(av, ol_.out).value_or(0.0) * 1e-9;
      }

      result.metrics[ThreeStageTia::kPowerMw] = power_mw;
      result.metrics[ThreeStageTia::kZtDbOhm] = zt_db;
      result.metrics[ThreeStageTia::kUgfGhz] = ugf_ghz;
      result.metrics[ThreeStageTia::kInputNoisePa] = in_noise_pa;
      result.simulation_ok = true;
      return result;
    } catch (const std::exception&) {
      return result;
    }
  }

 private:
  const ThreeStageTia* problem_;
  ProcessVariation pv_;
  bool cl_built_ = false;
  bool ol_built_ = false;
  TiaBench cl_, ol_;
  DcAnalysis dc_;
  AcAnalysis ac_;
  NoiseAnalysis noise_;
};

}  // namespace

ThreeStageTia::ThreeStageTia() {
  spec_.name = "three_stage_tia";
  spec_.target_name = "power";
  spec_.target_unit = "mW";
  spec_.target_weight = 0.01;  // w0: keeps the target term below any single clamped penalty
  spec_.constraints = {
      // Eq. 8 bounds rescaled to this substrate's level-1 devices so that the
      // joint feasible region keeps the paper's hardness (random sampling
      // essentially never satisfies all three at once; see EXPERIMENTS.md).
      {"zt_dc_gain", "dBOhm", ConstraintKind::GreaterEqual, 95.0, 1.0},
      {"ugf", "GHz", ConstraintKind::GreaterEqual, 1.7, 1.0},
      {"input_noise", "pA/sqrtHz", ConstraintKind::LessEqual, 2.0, 1.0},
  };
  lower_ = {0.18, 0.18, 0.18, 0.18, 0.18, 0.22, 0.22, 0.22, 0.22, 0.22, 0.1, 100, 1, 1, 1};
  upper_ = {2, 2, 2, 2, 2, 150, 150, 150, 150, 150, 100, 2000, 20, 20, 20};
  integer_.assign(15, false);
  for (int i = 12; i < 15; ++i) integer_[static_cast<std::size_t>(i)] = true;
}

std::vector<std::string> ThreeStageTia::parameter_names() const {
  return {"L1", "L2", "L3", "L4", "L5", "W1", "W2", "W3", "W4", "W5", "R", "Cf", "N1", "N2", "N3"};
}

EvalResult ThreeStageTia::evaluate(const Vec& x) const {
  // Fresh session per call: thread-safe, identical to a persistent session.
  return TiaSession(*this, variation_).evaluate(x);
}

std::unique_ptr<EvalSession> ThreeStageTia::make_session() const {
  return std::make_unique<TiaSession>(*this, variation_);
}

EvalResult ThreeStageTia::evaluate_at(const Vec& x, const ProcessVariation& pv) const {
  validate_process_variation(pv);
  return TiaSession(*this, pv).evaluate(x);
}

std::unique_ptr<EvalSession> ThreeStageTia::make_session_at(const ProcessVariation& pv) const {
  validate_process_variation(pv);
  return std::make_unique<TiaSession>(*this, pv);
}

}  // namespace maopt::ckt
