#include "circuits/variation_sweep.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"

namespace maopt::ckt {

namespace {

/// Usable variant result: the solver reported success AND the metrics are
/// shaped and finite. A raw fault injector can return ok=true with NaN or
/// garbage-magnitude metrics; treating those as "ok" would let one poisoned
/// variant silently corrupt the aggregate.
bool variant_usable(const EvalResult& r, std::size_t num_metrics) {
  if (!r.simulation_ok || r.metrics.size() != num_metrics) return false;
  for (const double m : r.metrics)
    if (!std::isfinite(m)) return false;
  return true;
}

/// Smallest v such that at least ceil(p*n) of the (ascending sorted) values
/// are <= v.
double upper_quantile(std::vector<double>& values, double p) {
  std::sort(values.begin(), values.end());
  const auto n = static_cast<double>(values.size());
  const auto idx = static_cast<std::size_t>(std::ceil(p * n)) - 1;
  return values[std::min(idx, values.size() - 1)];
}

/// Largest v such that at least ceil(p*n) of the values are >= v.
double lower_quantile(std::vector<double>& values, double p) {
  std::sort(values.begin(), values.end());
  const auto n = static_cast<double>(values.size());
  const std::size_t count = std::min(
      values.size(), std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(p * n))));
  return values[values.size() - count];
}

}  // namespace

const char* to_string(RobustAggregation aggregation) {
  switch (aggregation) {
    case RobustAggregation::WorstCase: return "worst-case";
    case RobustAggregation::KSigma: return "k-sigma";
    case RobustAggregation::YieldQuantile: return "yield-quantile";
  }
  return "unknown";
}

const char* to_string(SweepFailurePolicy policy) {
  switch (policy) {
    case SweepFailurePolicy::FailFast: return "fail-fast";
    case SweepFailurePolicy::PenalizeFailedVariant: return "penalize-failed";
    case SweepFailurePolicy::ConservativeBound: return "conservative-bound";
  }
  return "unknown";
}

std::string SweepStats::report() const {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "%llu sweeps (%llu degraded, %llu failed), variants: %llu ok / %llu failed / "
                "%llu skipped",
                static_cast<unsigned long long>(sweeps),
                static_cast<unsigned long long>(degraded_sweeps),
                static_cast<unsigned long long>(failed_sweeps),
                static_cast<unsigned long long>(variants_ok),
                static_cast<unsigned long long>(variants_failed),
                static_cast<unsigned long long>(variants_skipped));
  return buf;
}

VariationSweepProblem::VariationSweepProblem(const SizingProblem& inner,
                                             std::vector<SweepVariant> variants,
                                             SweepPolicyConfig policy, std::string kind)
    : inner_(&inner),
      backend_(dynamic_cast<const SweepBackend*>(&inner)),
      variants_(std::move(variants)),
      policy_(policy),
      kind_(std::move(kind)) {
  MAOPT_CHECK(!variants_.empty(), "VariationSweepProblem: empty variant list");
  bool any_enabled = false;
  for (const SweepVariant& v : variants_) {
    validate_process_variation(v.pv);
    any_enabled = any_enabled || v.pv.enabled();
  }
  MAOPT_CHECK(!any_enabled || inner.supports_process_variation(),
              "VariationSweepProblem: inner problem has no process-variation support");
  MAOPT_CHECK(std::isfinite(policy_.k_sigma) && policy_.k_sigma >= 0.0,
              "VariationSweepProblem: k_sigma must be finite and >= 0");
  MAOPT_CHECK(policy_.yield_target > 0.0 && policy_.yield_target <= 1.0,
              "VariationSweepProblem: yield_target must be in (0, 1]");
  MAOPT_CHECK(policy_.min_ok_fraction >= 0.0 && policy_.min_ok_fraction <= 1.0,
              "VariationSweepProblem: min_ok_fraction must be in [0, 1]");
  MAOPT_CHECK(policy_.breaker.trip_after >= 0,
              "VariationSweepProblem: breaker.trip_after must be >= 0");
  MAOPT_CHECK(policy_.breaker.trip_after == 0 || policy_.breaker.cooldown >= 1,
              "VariationSweepProblem: breaker.cooldown must be >= 1 when breakers are enabled");
  if (policy_.breaker.trip_after > 0) {
    const MutexLock lock(breaker_mutex_);
    breakers_.resize(variants_.size());
  }
}

Vec VariationSweepProblem::aggregate(const std::vector<const Vec*>& contributing) const {
  const std::size_t m = num_metrics();
  const auto& cs = spec().constraints;
  Vec out(m);

  // Per metric j: is "bigger" the bad direction? The target f0 is minimized,
  // a GreaterEqual constraint is violated from below.
  const auto bigger_is_worse = [&cs](std::size_t j) {
    return j == 0 || cs[j - 1].kind == ConstraintKind::LessEqual;
  };

  std::vector<double> values(contributing.size());
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t i = 0; i < contributing.size(); ++i) values[i] = (*contributing[i])[j];
    switch (policy_.aggregation) {
      case RobustAggregation::WorstCase:
        out[j] = bigger_is_worse(j) ? *std::max_element(values.begin(), values.end())
                                    : *std::min_element(values.begin(), values.end());
        break;
      case RobustAggregation::KSigma: {
        double mean = 0.0;
        for (const double v : values) mean += v;
        mean /= static_cast<double>(values.size());
        double var = 0.0;
        for (const double v : values) var += (v - mean) * (v - mean);
        var /= static_cast<double>(values.size());
        const double spread = policy_.k_sigma * std::sqrt(var);
        out[j] = bigger_is_worse(j) ? mean + spread : mean - spread;
        break;
      }
      case RobustAggregation::YieldQuantile:
        out[j] = bigger_is_worse(j) ? upper_quantile(values, policy_.yield_target)
                                    : lower_quantile(values, policy_.yield_target);
        break;
    }
  }
  return out;
}

EvalResult VariationSweepProblem::evaluate(const Vec& x) const {
  const std::size_t n = variants_.size();
  const Stopwatch sweep_timer;

  // Breaker gate: decide up front which variants this sweep skips. With
  // breakers disabled (default) this is branch-free and lock-free.
  std::vector<bool> skip(n, false);
  if (policy_.breaker.trip_after > 0) {
    const MutexLock lock(breaker_mutex_);
    for (std::size_t i = 0; i < n; ++i) {
      BreakerState& b = breakers_[i];
      if (!b.open) continue;
      if (b.cooldown_left > 0) {
        --b.cooldown_left;
        skip[i] = true;  // still cooling down
      }
      // cooldown exhausted: half-open — attempt this variant once.
    }
  }

  // Evaluate the non-skipped variants: one batch through the backend when
  // available, else serially through the thread-safe evaluate_at primitive.
  std::vector<EvalResult> results(n);
  std::vector<double> seconds(n, 0.0);
  if (backend_ != nullptr) {
    std::vector<ProcessVariation> pvs;
    std::vector<std::size_t> index;
    pvs.reserve(n);
    index.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (skip[i]) continue;
      pvs.push_back(variants_[i].pv);
      index.push_back(i);
    }
    std::vector<EvalResult> batch = backend_->evaluate_variants(x, pvs);
    MAOPT_CHECK(batch.size() == pvs.size(),
                "VariationSweepProblem: backend returned a mis-sized batch");
    for (std::size_t k = 0; k < index.size(); ++k) results[index[k]] = std::move(batch[k]);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      if (skip[i]) continue;
      const Stopwatch timer;
      try {
        results[i] = inner_->evaluate_at(x, variants_[i].pv);
      } catch (...) {
        // Partial failure is the expected case: a throwing variant becomes a
        // failed variant, never a lost sweep.
        results[i].simulation_ok = false;
      }
      seconds[i] = timer.elapsed_seconds();
    }
  }

  // Classify, then update breaker state from this sweep's attempts.
  const std::size_t m = num_metrics();
  std::vector<bool> usable(n, false);
  std::size_t ok_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    usable[i] = !skip[i] && variant_usable(results[i], m);
    if (usable[i]) ++ok_count;
  }
  if (policy_.breaker.trip_after > 0) {
    const MutexLock lock(breaker_mutex_);
    for (std::size_t i = 0; i < n; ++i) {
      if (skip[i]) continue;
      BreakerState& b = breakers_[i];
      if (usable[i]) {
        b.consecutive_failures = 0;
        b.open = false;
      } else {
        ++b.consecutive_failures;
        if (b.consecutive_failures >= policy_.breaker.trip_after) {
          b.open = true;
          b.cooldown_left = policy_.breaker.cooldown;
        }
      }
    }
  }

  const std::size_t skipped_count =
      static_cast<std::size_t>(std::count(skip.begin(), skip.end(), true));
  const std::size_t failed_count = n - ok_count - skipped_count;
  const std::size_t down_count = n - ok_count;  // failed + skipped

  // Apply the partial-failure policy and aggregate.
  EvalResult out;
  out.variants_total = static_cast<std::uint32_t>(n);
  out.variants_failed = static_cast<std::uint32_t>(down_count);
  const Vec penalty = inner_->failure_metrics();
  if (ok_count == 0 ||
      (down_count > 0 && policy_.failure_policy == SweepFailurePolicy::FailFast) ||
      (policy_.failure_policy == SweepFailurePolicy::ConservativeBound &&
       static_cast<double>(ok_count) <
           policy_.min_ok_fraction * static_cast<double>(n))) {
    out.metrics = penalty;
    out.simulation_ok = false;
  } else {
    std::vector<const Vec*> contributing;
    contributing.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (usable[i]) {
        contributing.push_back(&results[i].metrics);
      } else if (policy_.failure_policy == SweepFailurePolicy::PenalizeFailedVariant) {
        contributing.push_back(&penalty);
      }
      // ConservativeBound: failed/skipped variants simply drop out.
    }
    out.metrics = aggregate(contributing);
    out.simulation_ok = true;
    out.degraded = down_count > 0;
  }

  sweeps_.fetch_add(1, std::memory_order_relaxed);
  variants_ok_.fetch_add(ok_count, std::memory_order_relaxed);
  variants_failed_.fetch_add(failed_count, std::memory_order_relaxed);
  variants_skipped_.fetch_add(skipped_count, std::memory_order_relaxed);
  if (out.degraded) degraded_sweeps_.fetch_add(1, std::memory_order_relaxed);
  if (!out.simulation_ok) failed_sweeps_.fetch_add(1, std::memory_order_relaxed);

  // Emit the whole telemetry bracket atomically (see set_observer()).
  if (observer_ != nullptr) {
    const double total_seconds = sweep_timer.elapsed_seconds();
    const MutexLock lock(emit_mutex_);
    const std::uint64_t id = next_sweep_id_++;
    obs::SweepStarted started;
    started.sweep_id = id;
    started.kind = kind_;
    started.aggregation = to_string(policy_.aggregation);
    started.variants = n;
    observer_->on_sweep_started(started);
    for (std::size_t i = 0; i < n; ++i) {
      obs::SweepVariantEvaluated ev;
      ev.sweep_id = id;
      ev.variant = i;
      ev.label = variants_[i].label;
      ev.ok = usable[i];
      ev.skipped = skip[i];
      ev.fom0 = usable[i] ? results[i].metrics[0] : 0.0;
      ev.seconds = seconds[i];
      observer_->on_sweep_variant_evaluated(ev);
    }
    obs::SweepCompleted done;
    done.sweep_id = id;
    done.variants_ok = ok_count;
    done.variants_failed = failed_count;
    done.variants_skipped = skipped_count;
    done.degraded = out.degraded;
    done.policy = to_string(policy_.failure_policy);
    done.seconds = total_seconds;
    observer_->on_sweep_completed(done);
  }

  return out;
}

SweepStats VariationSweepProblem::stats() const {
  SweepStats s;
  s.sweeps = sweeps_.load(std::memory_order_relaxed);
  s.degraded_sweeps = degraded_sweeps_.load(std::memory_order_relaxed);
  s.failed_sweeps = failed_sweeps_.load(std::memory_order_relaxed);
  s.variants_ok = variants_ok_.load(std::memory_order_relaxed);
  s.variants_failed = variants_failed_.load(std::memory_order_relaxed);
  s.variants_skipped = variants_skipped_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace maopt::ckt
