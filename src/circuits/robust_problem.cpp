#include "circuits/robust_problem.hpp"

#include <algorithm>
#include <stdexcept>

namespace maopt::ckt {

RobustProblem::RobustProblem(SizingProblem& inner, std::vector<ProcessCorner> corners,
                             double vth_step, double kp_step_rel)
    : inner_(&inner),
      corners_(std::move(corners)),
      vth_step_(vth_step),
      kp_step_rel_(kp_step_rel) {
  if (!inner.supports_process_variation())
    throw std::invalid_argument("RobustProblem: inner problem has no process-variation support");
  if (corners_.empty()) throw std::invalid_argument("RobustProblem: empty corner set");
}

EvalResult RobustProblem::evaluate(const Vec& x) const {
  EvalResult worst;
  bool first = true;
  for (const auto corner : corners_) {
    inner_->set_process_variation(corner_variation(corner, vth_step_, kp_step_rel_));
    const EvalResult r = inner_->evaluate(x);
    if (first) {
      worst = r;
      first = false;
    } else {
      worst.simulation_ok = worst.simulation_ok && r.simulation_ok;
      // Target metric: worst = maximum (we minimize f0).
      worst.metrics[0] = std::max(worst.metrics[0], r.metrics[0]);
      const auto& cs = spec().constraints;
      for (std::size_t i = 0; i < cs.size(); ++i) {
        // Worst = the value closest to (or deepest into) violation.
        if (cs[i].kind == ConstraintKind::GreaterEqual)
          worst.metrics[i + 1] = std::min(worst.metrics[i + 1], r.metrics[i + 1]);
        else
          worst.metrics[i + 1] = std::max(worst.metrics[i + 1], r.metrics[i + 1]);
      }
    }
    if (!r.simulation_ok) {
      // A failed corner is a failed robust evaluation: report the inner
      // problem's failure metrics so the FoM penalizes it fully.
      worst = r;
      worst.simulation_ok = false;
      break;
    }
  }
  inner_->set_process_variation(ProcessVariation{});
  return worst;
}

}  // namespace maopt::ckt
