#include "circuits/robust_problem.hpp"

#include <cmath>
#include <utility>

#include "common/check.hpp"

namespace maopt::ckt {

namespace {

std::vector<SweepVariant> corner_variants(const RobustConfig& config) {
  MAOPT_CHECK(!config.corners.empty(), "RobustProblem: empty corner set");
  MAOPT_CHECK(std::isfinite(config.vth_step) && std::isfinite(config.kp_step_rel),
              "RobustProblem: corner steps must be finite");
  for (std::size_t i = 0; i < config.corners.size(); ++i)
    for (std::size_t j = i + 1; j < config.corners.size(); ++j)
      MAOPT_CHECK(config.corners[i] != config.corners[j],
                  "RobustProblem: duplicate corner in corner set");
  std::vector<SweepVariant> variants;
  variants.reserve(config.corners.size());
  for (const ProcessCorner corner : config.corners)
    variants.push_back({corner_variation(corner, config.vth_step, config.kp_step_rel),
                        corner_name(corner)});
  return variants;
}

RobustConfig legacy_config(std::vector<ProcessCorner> corners, double vth_step,
                           double kp_step_rel) {
  RobustConfig config;
  config.corners = std::move(corners);
  config.vth_step = vth_step;
  config.kp_step_rel = kp_step_rel;
  // The original serial sweep reported worst-case metrics and failed the
  // whole evaluation on any failed corner.
  config.policy.aggregation = RobustAggregation::WorstCase;
  config.policy.failure_policy = SweepFailurePolicy::FailFast;
  return config;
}

std::vector<SweepVariant> mismatch_variants(const MismatchSettings& settings) {
  validate_mismatch_settings(settings);
  std::vector<SweepVariant> variants;
  variants.reserve(static_cast<std::size_t>(settings.instances));
  for (int k = 0; k < settings.instances; ++k) {
    ProcessVariation pv;
    pv.sigma_vth = settings.sigma_vth;
    pv.sigma_kp_rel = settings.sigma_kp_rel;
    pv.seed = settings.seed_base + static_cast<std::uint64_t>(k);
    variants.push_back({pv, "mc" + std::to_string(k)});
  }
  return variants;
}

}  // namespace

RobustProblem::RobustProblem(const SizingProblem& inner, RobustConfig config)
    : VariationSweepProblem(inner, corner_variants(config), config.policy, "corners"),
      config_(std::move(config)) {
  // A TT-only sweep has no enabled variation, so the engine's own support
  // check would not fire; robust optimization is nonetheless meaningless on
  // a variation-unaware problem.
  MAOPT_CHECK(inner.supports_process_variation(),
              "RobustProblem: inner problem has no process-variation support");
}

RobustProblem::RobustProblem(const SizingProblem& inner, std::vector<ProcessCorner> corners,
                             double vth_step, double kp_step_rel)
    : RobustProblem(inner, legacy_config(std::move(corners), vth_step, kp_step_rel)) {}

RobustProblem::RobustProblem(const SizingProblem& inner,
                             std::initializer_list<ProcessCorner> corners, double vth_step,
                             double kp_step_rel)
    : RobustProblem(inner, std::vector<ProcessCorner>(corners), vth_step, kp_step_rel) {}

void validate_mismatch_settings(const MismatchSettings& settings) {
  MAOPT_CHECK(settings.instances >= 1, "MismatchSettings: instances must be >= 1");
  MAOPT_CHECK(std::isfinite(settings.sigma_vth) && settings.sigma_vth >= 0.0,
              "MismatchSettings: sigma_vth must be finite and >= 0");
  MAOPT_CHECK(std::isfinite(settings.sigma_kp_rel) && settings.sigma_kp_rel >= 0.0,
              "MismatchSettings: sigma_kp_rel must be finite and >= 0");
  MAOPT_CHECK(settings.sigma_vth > 0.0 || settings.sigma_kp_rel > 0.0,
              "MismatchSettings: at least one sigma must be > 0 (all-nominal sweep)");
}

YieldProblem::YieldProblem(const SizingProblem& inner, YieldConfig config)
    : VariationSweepProblem(inner, mismatch_variants(config.mismatch), config.policy,
                            "monte-carlo"),
      config_(std::move(config)) {}

}  // namespace maopt::ckt
