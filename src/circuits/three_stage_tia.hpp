// Three-stage shunt-feedback transimpedance amplifier testbench
// (paper Fig. 4b, Table III, Eq. 8).
//
// Topology: three inverting gain stages (NMOS common-source drivers M1..M3
// with shared-geometry PMOS diode loads), an NMOS source-follower output
// buffer, and a feedback resistor R (with parallel bandwidth-limiting cap
// Cf) from the buffer output back to the input node. The input is a current
// source with a 200 fF photodiode capacitance. VDD = 1.8 V.
//
// Parameter vector (natural units, matching Table III):
//   [L1..L5 (um), W1..W5 (um), R (kOhm), Cf (fF), N1..N3 (integer)]
// Stage drivers: M1 (W1,L1,m=N1), M2 (W2,L2,m=N2), M3 (W3,L3,m=N3);
// diode loads share (W4,L4); follower is (W5,L5).
//
// Metrics: f0 = power (mW); constraints = transimpedance DC gain (dBOhm),
// open-loop amplifier unity-gain frequency (GHz), input-referred current
// noise at 10 MHz (pA/sqrt(Hz)) — the Eq. 8 set. The open-loop UGF is
// measured with a replica-bias bench: the closed-loop operating point is
// solved first, then the loop is broken and DC sources pin the bias.
#pragma once

#include "circuits/sizing_problem.hpp"

namespace maopt::ckt {

class ThreeStageTia final : public SizingProblem {
 public:
  ThreeStageTia();

  const ProblemSpec& spec() const override { return spec_; }
  std::size_t dim() const override { return 15; }
  const Vec& lower_bounds() const override { return lower_; }
  const Vec& upper_bounds() const override { return upper_; }
  const std::vector<bool>& integer_mask() const override { return integer_; }
  std::vector<std::string> parameter_names() const override;

  EvalResult evaluate(const Vec& x) const override;

  /// Persistent-testbench session (see EvalSession).
  std::unique_ptr<EvalSession> make_session() const override;

  /// Monte Carlo mismatch support (see process_variation.hpp).
  void set_process_variation(const ProcessVariation& pv) override { variation_ = pv; }
  bool supports_process_variation() const override { return true; }

  /// Thread-safe variation-pinned evaluation (see TwoStageOta::evaluate_at).
  EvalResult evaluate_at(const Vec& x, const ProcessVariation& pv) const override;
  std::unique_ptr<EvalSession> make_session_at(const ProcessVariation& pv) const override;

  enum Metric {
    kPowerMw = 0,
    kZtDbOhm,
    kUgfGhz,
    kInputNoisePa,
  };

 private:
  ProblemSpec spec_;
  Vec lower_, upper_;
  std::vector<bool> integer_;
  ProcessVariation variation_;
};

}  // namespace maopt::ckt
