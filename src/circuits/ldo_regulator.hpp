// 3.3 V -> 1.8 V low-dropout regulator testbench
// (paper Fig. 4c, Table V, Eq. 9).
//
// Topology: two-stage error amplifier (NMOS diff pair W1/L1 with PMOS
// mirror W2/L2 and tail W3/L3 m=N1; second stage NMOS common-source W4/L4
// m=N2 with PMOS current-source load), PMOS pass device (W5,L5, m=N3),
// resistive feedback divider R1/R2 against an ideal 0.9 V reference,
// compensation cap C at the pass gate, and a fixed 1 nF output capacitor.
//
// Parameter vector (natural units, matching Table V):
//   [L1..L5 (um), W1..W5 (um), R1 R2 (kOhm), C (fF), N1..N3 (integer)]
//
// Metrics: f0 = quiescent current at 50 mA load (mA); constraints =
// Vout window at Vin=3.3 V, load regulation (mV/mA), line regulation (%/V),
// four load/line transient settling times (us), PSRR at 1 kHz (dB)
// — the Eq. 9 set.
#pragma once

#include "circuits/sizing_problem.hpp"

namespace maopt::ckt {

/// Transient resolution profile: the four settling measurements dominate the
/// evaluation cost, so benches can trade accuracy for speed explicitly.
struct LdoTranProfile {
  double t_stop = 25e-6;
  double dt = 25e-9;
  double t_event = 2e-6;   ///< when the load / line step fires
  double t_edge = 100e-9;  ///< step edge duration
};

class LdoRegulator final : public SizingProblem {
 public:
  explicit LdoRegulator(LdoTranProfile profile = {});

  const ProblemSpec& spec() const override { return spec_; }
  std::size_t dim() const override { return 16; }
  const Vec& lower_bounds() const override { return lower_; }
  const Vec& upper_bounds() const override { return upper_; }
  const std::vector<bool>& integer_mask() const override { return integer_; }
  std::vector<std::string> parameter_names() const override;

  EvalResult evaluate(const Vec& x) const override;

  /// Persistent-testbench session (see EvalSession).
  std::unique_ptr<EvalSession> make_session() const override;

  /// Monte Carlo mismatch support (see process_variation.hpp).
  void set_process_variation(const ProcessVariation& pv) override { variation_ = pv; }
  bool supports_process_variation() const override { return true; }

  /// Thread-safe variation-pinned evaluation (see TwoStageOta::evaluate_at).
  EvalResult evaluate_at(const Vec& x, const ProcessVariation& pv) const override;
  std::unique_ptr<EvalSession> make_session_at(const ProcessVariation& pv) const override;

  enum Metric {
    kQuiescentMa = 0,
    kVoutMinV,      // Vout > 1.75
    kVoutMaxV,      // Vout < 1.85 (same measured value, two bounds)
    kLoadRegMvMa,
    kLineRegPctV,
    kTLoadUpUs,
    kTLoadDownUs,
    kTLineUpUs,
    kTLineDownUs,
    kPsrrDb,
  };

 private:
  ProblemSpec spec_;
  Vec lower_, upper_;
  std::vector<bool> integer_;
  ProcessVariation variation_;
  LdoTranProfile profile_;
};

}  // namespace maopt::ckt
