// Finite-difference sensitivity analysis: how much each metric moves per
// unit change of each design parameter at a given design point — the
// "which knob does what" report designers ask for before hand-tuning, and
// a sanity check on what the critic network must learn.
#pragma once

#include "circuits/sizing_problem.hpp"
#include "linalg/matrix.hpp"

namespace maopt::ckt {

struct SensitivityResult {
  /// (num_metrics x dim): d metric_i / d param_j, central differences.
  linalg::Mat jacobian;
  /// Same, normalized: (dm/m0) / (dp/range_j) — dimensionless "percent per
  /// percent-of-range", comparable across metrics and parameters.
  linalg::Mat normalized;
  Vec base_metrics;
  bool ok = false;  ///< false if any probe simulation failed
};

/// Central finite differences with step = rel_step * (upper - lower) per
/// parameter, clipped to bounds (one-sided at the box edge). Integer
/// parameters use a +/-1 step. Costs 2*dim simulations.
SensitivityResult sensitivity_analysis(const SizingProblem& problem, const Vec& x,
                                       double rel_step = 0.01);

/// Formats the normalized sensitivities as a table (rows = metrics,
/// columns = parameters), flagging the strongest knob per metric.
std::string format_sensitivity_table(const SizingProblem& problem,
                                     const SensitivityResult& result);

}  // namespace maopt::ckt
