#include "circuits/sizing_problem.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace maopt::ckt {

namespace {

/// Default session: no reusable state, every call is a plain evaluate().
class ForwardingSession final : public EvalSession {
 public:
  explicit ForwardingSession(const SizingProblem& problem) : problem_(&problem) {}
  EvalResult evaluate(const Vec& x) override { return problem_->evaluate(x); }

 private:
  const SizingProblem* problem_;
};

/// Default variation-pinned session: forwards to evaluate_at(x, pv).
class VariedForwardingSession final : public EvalSession {
 public:
  VariedForwardingSession(const SizingProblem& problem, ProcessVariation pv)
      : problem_(&problem), pv_(pv) {}
  EvalResult evaluate(const Vec& x) override { return problem_->evaluate_at(x, pv_); }

 private:
  const SizingProblem* problem_;
  ProcessVariation pv_;
};

}  // namespace

void validate_process_variation(const ProcessVariation& pv) {
  MAOPT_CHECK(std::isfinite(pv.sigma_vth) && pv.sigma_vth >= 0.0,
              "ProcessVariation: sigma_vth must be finite and >= 0");
  MAOPT_CHECK(std::isfinite(pv.sigma_kp_rel) && pv.sigma_kp_rel >= 0.0,
              "ProcessVariation: sigma_kp_rel must be finite and >= 0");
  MAOPT_CHECK(std::isfinite(pv.nmos_vth_shift) && std::isfinite(pv.pmos_vth_shift),
              "ProcessVariation: vth shifts must be finite");
  MAOPT_CHECK(std::isfinite(pv.nmos_kp_factor) && pv.nmos_kp_factor > 0.0,
              "ProcessVariation: nmos_kp_factor must be finite and > 0");
  MAOPT_CHECK(std::isfinite(pv.pmos_kp_factor) && pv.pmos_kp_factor > 0.0,
              "ProcessVariation: pmos_kp_factor must be finite and > 0");
}

std::unique_ptr<EvalSession> SizingProblem::make_session() const {
  return std::make_unique<ForwardingSession>(*this);
}

EvalResult SizingProblem::evaluate_at(const Vec& x, const ProcessVariation& pv) const {
  validate_process_variation(pv);
  MAOPT_CHECK(!pv.enabled() || supports_process_variation(),
              "evaluate_at: enabled variation on a problem without variation support");
  return evaluate(x);
}

std::unique_ptr<EvalSession> SizingProblem::make_session_at(const ProcessVariation& pv) const {
  validate_process_variation(pv);
  MAOPT_CHECK(!pv.enabled() || supports_process_variation(),
              "make_session_at: enabled variation on a problem without variation support");
  if (!pv.enabled()) return make_session();
  return std::make_unique<VariedForwardingSession>(*this, pv);
}

double normalized_violation(const ConstraintSpec& c, double value) {
  const double denom = std::max(std::abs(c.bound), 1e-30);
  if (c.kind == ConstraintKind::GreaterEqual) return std::max(0.0, (c.bound - value) / denom);
  return std::max(0.0, (value - c.bound) / denom);
}

Vec SizingProblem::failure_metrics() const {
  // One full normalized violation per constraint; the target metric gets a
  // large-but-finite sentinel scaled later by the FoM's f0 reference.
  Vec f(num_metrics());
  f[0] = 1e3;
  const auto& cs = spec().constraints;
  for (std::size_t i = 0; i < cs.size(); ++i) {
    const double off = std::abs(cs[i].bound) > 0 ? std::abs(cs[i].bound) : 1.0;
    f[i + 1] = cs[i].kind == ConstraintKind::GreaterEqual ? cs[i].bound - off : cs[i].bound + off;
  }
  return f;
}

Vec SizingProblem::clip(Vec x) const {
  const Vec& lo = lower_bounds();
  const Vec& hi = upper_bounds();
  const auto& integers = integer_mask();
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::clamp(x[i], lo[i], hi[i]);
    if (integers[i]) x[i] = std::clamp(std::round(x[i]), lo[i], hi[i]);
  }
  return x;
}

Vec SizingProblem::random_design(Rng& rng) const {
  const Vec& lo = lower_bounds();
  const Vec& hi = upper_bounds();
  Vec x(dim());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = rng.uniform(lo[i], hi[i]);
  return clip(std::move(x));
}

bool SizingProblem::feasible(const Vec& metrics) const {
  const auto& cs = spec().constraints;
  for (std::size_t i = 0; i < cs.size(); ++i)
    if (normalized_violation(cs[i], metrics[i + 1]) > 0.0) return false;
  return true;
}

}  // namespace maopt::ckt
