#include "circuits/ldo_regulator.hpp"

#include <array>
#include <cmath>

#include "circuits/process_variation.hpp"
#include "spice/devices.hpp"
#include "spice/measure.hpp"
#include "spice/mosfet.hpp"
#include "spice/tran_analysis.hpp"

namespace maopt::ckt {

namespace {

using namespace maopt::spice;

constexpr double kVinNom = 3.3;
constexpr double kVref = 0.9;
constexpr double kIbias = 10e-6;
constexpr double kCout = 1e-9;      // fixed on-board output capacitor
constexpr double kIloadNom = 50e-3;
constexpr double kIloadLight = 0.1e-6;
constexpr double kIloadHeavy = 150e-3;

struct LdoParams {
  double l[5];
  double w[5];
  double r1, r2;
  double c;
  double n[3];
};

LdoParams unpack(const Vec& x) {
  LdoParams p{};
  for (int i = 0; i < 5; ++i) p.l[i] = x[static_cast<std::size_t>(i)] * 1e-6;
  for (int i = 0; i < 5; ++i) p.w[i] = x[static_cast<std::size_t>(5 + i)] * 1e-6;
  p.r1 = x[10] * 1e3;
  p.r2 = x[11] * 1e3;
  p.c = x[12] * 1e-15;
  for (int i = 0; i < 3; ++i) p.n[i] = x[static_cast<std::size_t>(13 + i)];
  return p;
}

struct FetGeom {
  double w, l, m;
};

/// Geometry of every Mosfet, in build order: bias diode, PMOS diode, tail,
/// M1, M2, mirror diode, mirror out, CS driver, CS load, pass PMOS.
std::array<FetGeom, 10> fet_geoms(const LdoParams& p) {
  return {{{p.w[2], p.l[2], 1.0},
           {p.w[1], p.l[1], 1.0},
           {p.w[2], p.l[2], p.n[0]},
           {p.w[0], p.l[0], 1.0},
           {p.w[0], p.l[0], 1.0},
           {p.w[1], p.l[1], 1.0},
           {p.w[1], p.l[1], 1.0},
           {p.w[3], p.l[3], p.n[1]},
           {p.w[1], p.l[1], p.n[1]},
           {p.w[4], p.l[4], p.n[2]}}};
}

struct LdoBench {
  Netlist net;
  VSource* vin = nullptr;
  CurrentSinkLoad* iload = nullptr;
  std::array<Mosfet*, 10> fets{};
  Resistor* r1 = nullptr;
  Resistor* r2 = nullptr;
  Capacitor* ccomp = nullptr;
  int vout = 0;
};

LdoBench build(const LdoParams& p, const ProcessVariation& pv) {
  LdoBench b;
  Netlist& n = b.net;
  const int vin = n.node("vin");
  const int vout = n.node("vout");
  const int fb = n.node("fb");
  const int vref = n.node("vref");
  const int tail = n.node("tail");
  const int n1 = n.node("n1");
  const int n2 = n.node("n2");
  const int gate = n.node("gate");
  const int vbn = n.node("vbn");
  const int vbp = n.node("vbp");
  const int gnd = n.node("0");

  const MosModel nm = MosModel::nmos_180();
  const MosModel pm = MosModel::pmos_180();

  // Per-device deterministic mismatch draws (one per Mosfet add, in order).
  Rng var_rng(derive_seed(pv.seed, 0x5A5A));
  auto vary = [&](const MosModel& m) { return pv.enabled() ? vary_model(m, var_rng, pv) : m; };

  b.vin = n.add<VSource>(vin, gnd, Waveform::dc(kVinNom));
  n.add<VSource>(vref, gnd, Waveform::dc(kVref));

  const auto fg = fet_geoms(p);
  // Bias chain: NMOS diode for the tail mirror, PMOS diode for the
  // second-stage current-source load.
  n.add<ISource>(vin, vbn, Waveform::dc(kIbias));
  b.fets[0] = n.add<Mosfet>(vbn, vbn, gnd, gnd, vary(nm), fg[0].w, fg[0].l);            // bias diode
  n.add<ISource>(vbp, gnd, Waveform::dc(kIbias));
  b.fets[1] = n.add<Mosfet>(vbp, vbp, vin, vin, vary(pm), fg[1].w, fg[1].l);            // PMOS diode

  // Error amplifier: M1 gate = vref, M2 gate = fb; output at n2.
  b.fets[2] = n.add<Mosfet>(tail, vbn, gnd, gnd, vary(nm), fg[2].w, fg[2].l, fg[2].m);  // tail
  b.fets[3] = n.add<Mosfet>(n1, vref, tail, gnd, vary(nm), fg[3].w, fg[3].l);           // M1
  b.fets[4] = n.add<Mosfet>(n2, fb, tail, gnd, vary(nm), fg[4].w, fg[4].l);             // M2
  b.fets[5] = n.add<Mosfet>(n1, n1, vin, vin, vary(pm), fg[5].w, fg[5].l);              // mirror diode
  b.fets[6] = n.add<Mosfet>(n2, n1, vin, vin, vary(pm), fg[6].w, fg[6].l);              // mirror out

  // Second stage drives the pass gate.
  b.fets[7] = n.add<Mosfet>(gate, n2, gnd, gnd, vary(nm), fg[7].w, fg[7].l, fg[7].m);   // CS driver
  b.fets[8] = n.add<Mosfet>(gate, vbp, vin, vin, vary(pm), fg[8].w, fg[8].l, fg[8].m);  // CS load
  b.ccomp = n.add<Capacitor>(gate, gnd, p.c);                             // compensation

  // Pass device and output network.
  b.fets[9] = n.add<Mosfet>(vout, gate, vin, vin, vary(pm), fg[9].w, fg[9].l, fg[9].m); // pass PMOS
  b.r1 = n.add<Resistor>(vout, fb, p.r1);
  b.r2 = n.add<Resistor>(fb, gnd, p.r2);
  n.add<Capacitor>(vout, gnd, kCout);
  b.iload = n.add<CurrentSinkLoad>(vout, gnd, Waveform::dc(kIloadNom));

  b.vout = vout;
  n.prepare();
  return b;
}

/// Re-targets an existing bench at a new design, resetting all mutable
/// source state a previous evaluation may have left behind (load/line
/// transient waveforms, AC magnitude — including after a failure).
void apply(LdoBench& b, const LdoParams& p) {
  const auto fg = fet_geoms(p);
  for (std::size_t i = 0; i < fg.size(); ++i) b.fets[i]->set_geometry(fg[i].w, fg[i].l, fg[i].m);
  b.r1->set_resistance(p.r1);
  b.r2->set_resistance(p.r2);
  b.ccomp->set_capacitance(p.c);
  b.vin->set_dc(kVinNom);
  b.vin->set_ac_magnitude(0.0);
  b.iload->set_dc(kIloadNom);
}

/// Persistent evaluator: the testbench is built once and re-targeted per
/// design; the DC/AC analyses keep their factorization workspaces across
/// designs. One instance per thread.
class LdoSession final : public EvalSession {
 public:
  LdoSession(const LdoRegulator& problem, const ProcessVariation& pv, LdoTranProfile profile)
      : problem_(&problem), pv_(pv), profile_(profile) {}

  EvalResult evaluate(const Vec& x) override {
    EvalResult result;
    result.metrics = problem_->failure_metrics();
    result.simulation_ok = false;
    try {
      const LdoParams p = unpack(x);
      if (!built_) {
        b_ = build(p, pv_);
        built_ = true;
      }
      apply(b_, p);
      LdoBench& b = b_;
      DcAnalysis& dc = dc_;

      // Nominal OP: Vin = 3.3 V, Iload = 50 mA.
      const DcResult op = dc.solve(b.net);
      if (!op.converged) return result;
      const double vout_nom = Netlist::voltage(op.x, b.vout);
      const double iq_ma =
          (std::abs(b.vin->branch_current(op.x)) - b.iload->current_at(op.x)) * 1e3;

      // Load regulation (warm-started DC points).
      Vec guess = op.x;
      b.iload->set_dc(kIloadLight);
      const DcResult op_light = dc.solve(b.net, &guess);
      b.iload->set_dc(kIloadHeavy);
      const DcResult op_heavy = dc.solve(b.net, &guess);
      b.iload->set_dc(kIloadNom);
      if (!op_light.converged || !op_heavy.converged) return result;
      const double load_reg =
          std::abs(Netlist::voltage(op_light.x, b.vout) - Netlist::voltage(op_heavy.x, b.vout)) /
          ((kIloadHeavy - kIloadLight) * 1e3) * 1e3;  // mV/mA

      // Line regulation at 50 mA: Vin 3.0 vs 3.6.
      b.vin->set_dc(3.0);
      const DcResult op_lo = dc.solve(b.net, &guess);
      b.vin->set_dc(3.6);
      const DcResult op_hi = dc.solve(b.net, &guess);
      b.vin->set_dc(kVinNom);
      if (!op_lo.converged || !op_hi.converged) return result;
      const double line_reg =
          std::abs(Netlist::voltage(op_hi.x, b.vout) - Netlist::voltage(op_lo.x, b.vout)) /
          std::max(vout_nom, 0.1) / 0.6 * 100.0;  // %/V

      // PSRR at 1 kHz.
      b.vin->set_ac_magnitude(1.0);
      const AcSweep ps = ac_.run(b.net, op.x, {1e3});
      b.vin->set_ac_magnitude(0.0);
      const double psrr_db = -20.0 * std::log10(std::max(std::abs(ps.voltage(0, b.vout)), 1e-12));

      // Four settling transients. Helper runs one configured transient and
      // returns the settling time in microseconds (sentinel on failure).
      const double t0 = profile_.t_event;
      const double te = profile_.t_edge;
      auto run_settle = [&]() -> double {
        TranOptions topt;
        topt.t_stop = profile_.t_stop;
        topt.dt = profile_.dt;
        TranAnalysis tran(topt);
        const TranResult tr = tran.run(b.net);
        if (!tr.converged) return 1e3;
        const auto wave = tr.node_waveform(b.vout);
        const auto st = settling_time(tr.time, wave, t0, wave.back(), 0.010);
        return st ? *st * 1e6 : 1e3;
      };

      b.iload->set_waveform(
          Waveform::pwl({{0.0, kIloadLight}, {t0, kIloadLight}, {t0 + te, kIloadHeavy}}));
      const double t_load_up = run_settle();
      b.iload->set_waveform(
          Waveform::pwl({{0.0, kIloadHeavy}, {t0, kIloadHeavy}, {t0 + te, kIloadLight}}));
      const double t_load_down = run_settle();
      b.iload->set_dc(kIloadNom);

      b.vin->set_waveform(Waveform::pwl({{0.0, 2.0}, {t0, 2.0}, {t0 + te, 3.3}}));
      const double t_line_up = run_settle();
      b.vin->set_waveform(Waveform::pwl({{0.0, 3.3}, {t0, 3.3}, {t0 + te, 2.0}}));
      const double t_line_down = run_settle();
      b.vin->set_dc(kVinNom);

      result.metrics[LdoRegulator::kQuiescentMa] = iq_ma;
      result.metrics[LdoRegulator::kVoutMinV] = vout_nom;
      result.metrics[LdoRegulator::kVoutMaxV] = vout_nom;
      result.metrics[LdoRegulator::kLoadRegMvMa] = load_reg;
      result.metrics[LdoRegulator::kLineRegPctV] = line_reg;
      result.metrics[LdoRegulator::kTLoadUpUs] = t_load_up;
      result.metrics[LdoRegulator::kTLoadDownUs] = t_load_down;
      result.metrics[LdoRegulator::kTLineUpUs] = t_line_up;
      result.metrics[LdoRegulator::kTLineDownUs] = t_line_down;
      result.metrics[LdoRegulator::kPsrrDb] = psrr_db;
      result.simulation_ok = true;
      return result;
    } catch (const std::exception&) {
      return result;
    }
  }

 private:
  const LdoRegulator* problem_;
  ProcessVariation pv_;
  LdoTranProfile profile_;
  bool built_ = false;
  LdoBench b_;
  DcAnalysis dc_;
  AcAnalysis ac_;
};

}  // namespace

LdoRegulator::LdoRegulator(LdoTranProfile profile) : profile_(profile) {
  spec_.name = "ldo_regulator";
  spec_.target_name = "quiescent_current";
  spec_.target_unit = "mA";
  spec_.target_weight = 0.01;  // w0: keeps the target term below any single clamped penalty
  spec_.constraints = {
      {"vout_min", "V", ConstraintKind::GreaterEqual, 1.75, 1.0},
      {"vout_max", "V", ConstraintKind::LessEqual, 1.85, 1.0},
      {"load_reg", "mV/mA", ConstraintKind::LessEqual, 0.1, 1.0},
      {"line_reg", "%/V", ConstraintKind::LessEqual, 0.1, 1.0},
      {"t_load_up", "us", ConstraintKind::LessEqual, 35.0, 1.0},
      {"t_load_down", "us", ConstraintKind::LessEqual, 35.0, 1.0},
      {"t_line_up", "us", ConstraintKind::LessEqual, 35.0, 1.0},
      {"t_line_down", "us", ConstraintKind::LessEqual, 35.0, 1.0},
      // Paper bound is 60 dB; this error-amp/pass-device stack tops out near
      // 57 dB at 1 kHz, so 50 dB keeps the constraint hard but reachable.
      {"psrr", "dB", ConstraintKind::GreaterEqual, 50.0, 1.0},
  };
  // Table V ranges in natural units.
  lower_ = {0.32, 0.32, 0.32, 0.32, 0.32, 0.22, 0.22, 0.22, 0.22, 0.22, 1, 1, 100, 1, 1, 1};
  upper_ = {3, 3, 3, 3, 3, 200, 200, 200, 200, 200, 100, 100, 2000, 20, 20, 20};
  integer_.assign(16, false);
  for (int i = 13; i < 16; ++i) integer_[static_cast<std::size_t>(i)] = true;
}

std::vector<std::string> LdoRegulator::parameter_names() const {
  return {"L1", "L2", "L3", "L4", "L5", "W1", "W2", "W3", "W4", "W5",
          "R1", "R2", "C",  "N1", "N2", "N3"};
}

EvalResult LdoRegulator::evaluate(const Vec& x) const {
  // Fresh session per call: thread-safe, identical to a persistent session.
  return LdoSession(*this, variation_, profile_).evaluate(x);
}

std::unique_ptr<EvalSession> LdoRegulator::make_session() const {
  return std::make_unique<LdoSession>(*this, variation_, profile_);
}

EvalResult LdoRegulator::evaluate_at(const Vec& x, const ProcessVariation& pv) const {
  validate_process_variation(pv);
  return LdoSession(*this, pv, profile_).evaluate(x);
}

std::unique_ptr<EvalSession> LdoRegulator::make_session_at(const ProcessVariation& pv) const {
  validate_process_variation(pv);
  return std::make_unique<LdoSession>(*this, pv, profile_);
}

}  // namespace maopt::ckt
