#include "circuits/ldo_regulator.hpp"

#include <cmath>

#include "circuits/process_variation.hpp"
#include "spice/devices.hpp"
#include "spice/measure.hpp"
#include "spice/mosfet.hpp"
#include "spice/tran_analysis.hpp"

namespace maopt::ckt {

namespace {

using namespace maopt::spice;

constexpr double kVinNom = 3.3;
constexpr double kVref = 0.9;
constexpr double kIbias = 10e-6;
constexpr double kCout = 1e-9;      // fixed on-board output capacitor
constexpr double kIloadNom = 50e-3;
constexpr double kIloadLight = 0.1e-6;
constexpr double kIloadHeavy = 150e-3;

struct LdoParams {
  double l[5];
  double w[5];
  double r1, r2;
  double c;
  double n[3];
};

LdoParams unpack(const Vec& x) {
  LdoParams p{};
  for (int i = 0; i < 5; ++i) p.l[i] = x[static_cast<std::size_t>(i)] * 1e-6;
  for (int i = 0; i < 5; ++i) p.w[i] = x[static_cast<std::size_t>(5 + i)] * 1e-6;
  p.r1 = x[10] * 1e3;
  p.r2 = x[11] * 1e3;
  p.c = x[12] * 1e-15;
  for (int i = 0; i < 3; ++i) p.n[i] = x[static_cast<std::size_t>(13 + i)];
  return p;
}

struct LdoBench {
  Netlist net;
  VSource* vin = nullptr;
  CurrentSinkLoad* iload = nullptr;
  int vout = 0;
};

LdoBench build(const LdoParams& p, const ProcessVariation& pv) {
  LdoBench b;
  Netlist& n = b.net;
  const int vin = n.node("vin");
  const int vout = n.node("vout");
  const int fb = n.node("fb");
  const int vref = n.node("vref");
  const int tail = n.node("tail");
  const int n1 = n.node("n1");
  const int n2 = n.node("n2");
  const int gate = n.node("gate");
  const int vbn = n.node("vbn");
  const int vbp = n.node("vbp");
  const int gnd = n.node("0");

  const MosModel nm = MosModel::nmos_180();
  const MosModel pm = MosModel::pmos_180();

  // Per-device deterministic mismatch draws (one per Mosfet add, in order).
  Rng var_rng(derive_seed(pv.seed, 0x5A5A));
  auto vary = [&](const MosModel& m) { return pv.enabled() ? vary_model(m, var_rng, pv) : m; };

  b.vin = n.add<VSource>(vin, gnd, Waveform::dc(kVinNom));
  n.add<VSource>(vref, gnd, Waveform::dc(kVref));

  // Bias chain: NMOS diode for the tail mirror, PMOS diode for the
  // second-stage current-source load.
  n.add<ISource>(vin, vbn, Waveform::dc(kIbias));
  n.add<Mosfet>(vbn, vbn, gnd, gnd, vary(nm), p.w[2], p.l[2]);                  // bias diode
  n.add<ISource>(vbp, gnd, Waveform::dc(kIbias));
  n.add<Mosfet>(vbp, vbp, vin, vin, vary(pm), p.w[1], p.l[1]);                  // PMOS diode

  // Error amplifier: M1 gate = vref, M2 gate = fb; output at n2.
  n.add<Mosfet>(tail, vbn, gnd, gnd, vary(nm), p.w[2], p.l[2], p.n[0]);         // tail
  n.add<Mosfet>(n1, vref, tail, gnd, vary(nm), p.w[0], p.l[0]);                 // M1
  n.add<Mosfet>(n2, fb, tail, gnd, vary(nm), p.w[0], p.l[0]);                   // M2
  n.add<Mosfet>(n1, n1, vin, vin, vary(pm), p.w[1], p.l[1]);                    // mirror diode
  n.add<Mosfet>(n2, n1, vin, vin, vary(pm), p.w[1], p.l[1]);                    // mirror out

  // Second stage drives the pass gate.
  n.add<Mosfet>(gate, n2, gnd, gnd, vary(nm), p.w[3], p.l[3], p.n[1]);          // CS driver
  n.add<Mosfet>(gate, vbp, vin, vin, vary(pm), p.w[1], p.l[1], p.n[1]);         // CS load
  n.add<Capacitor>(gate, gnd, p.c);                                       // compensation

  // Pass device and output network.
  n.add<Mosfet>(vout, gate, vin, vin, vary(pm), p.w[4], p.l[4], p.n[2]);        // pass PMOS
  n.add<Resistor>(vout, fb, p.r1);
  n.add<Resistor>(fb, gnd, p.r2);
  n.add<Capacitor>(vout, gnd, kCout);
  b.iload = n.add<CurrentSinkLoad>(vout, gnd, Waveform::dc(kIloadNom));

  b.vout = vout;
  n.prepare();
  return b;
}

}  // namespace

LdoRegulator::LdoRegulator(LdoTranProfile profile) : profile_(profile) {
  spec_.name = "ldo_regulator";
  spec_.target_name = "quiescent_current";
  spec_.target_unit = "mA";
  spec_.target_weight = 0.01;  // w0: keeps the target term below any single clamped penalty
  spec_.constraints = {
      {"vout_min", "V", ConstraintKind::GreaterEqual, 1.75, 1.0},
      {"vout_max", "V", ConstraintKind::LessEqual, 1.85, 1.0},
      {"load_reg", "mV/mA", ConstraintKind::LessEqual, 0.1, 1.0},
      {"line_reg", "%/V", ConstraintKind::LessEqual, 0.1, 1.0},
      {"t_load_up", "us", ConstraintKind::LessEqual, 35.0, 1.0},
      {"t_load_down", "us", ConstraintKind::LessEqual, 35.0, 1.0},
      {"t_line_up", "us", ConstraintKind::LessEqual, 35.0, 1.0},
      {"t_line_down", "us", ConstraintKind::LessEqual, 35.0, 1.0},
      // Paper bound is 60 dB; this error-amp/pass-device stack tops out near
      // 57 dB at 1 kHz, so 50 dB keeps the constraint hard but reachable.
      {"psrr", "dB", ConstraintKind::GreaterEqual, 50.0, 1.0},
  };
  // Table V ranges in natural units.
  lower_ = {0.32, 0.32, 0.32, 0.32, 0.32, 0.22, 0.22, 0.22, 0.22, 0.22, 1, 1, 100, 1, 1, 1};
  upper_ = {3, 3, 3, 3, 3, 200, 200, 200, 200, 200, 100, 100, 2000, 20, 20, 20};
  integer_.assign(16, false);
  for (int i = 13; i < 16; ++i) integer_[static_cast<std::size_t>(i)] = true;
}

std::vector<std::string> LdoRegulator::parameter_names() const {
  return {"L1", "L2", "L3", "L4", "L5", "W1", "W2", "W3", "W4", "W5",
          "R1", "R2", "C",  "N1", "N2", "N3"};
}

EvalResult LdoRegulator::evaluate(const Vec& x) const {
  EvalResult result;
  result.metrics = failure_metrics();
  result.simulation_ok = false;
  try {
    const LdoParams p = unpack(x);
    LdoBench b = build(p, variation_);
    DcAnalysis dc;

    // Nominal OP: Vin = 3.3 V, Iload = 50 mA.
    const DcResult op = dc.solve(b.net);
    if (!op.converged) return result;
    const double vout_nom = Netlist::voltage(op.x, b.vout);
    const double iq_ma =
        (std::abs(b.vin->branch_current(op.x)) - b.iload->current_at(op.x)) * 1e3;

    // Load regulation (warm-started DC points).
    Vec guess = op.x;
    b.iload->set_dc(kIloadLight);
    const DcResult op_light = dc.solve(b.net, &guess);
    b.iload->set_dc(kIloadHeavy);
    const DcResult op_heavy = dc.solve(b.net, &guess);
    b.iload->set_dc(kIloadNom);
    if (!op_light.converged || !op_heavy.converged) return result;
    const double load_reg =
        std::abs(Netlist::voltage(op_light.x, b.vout) - Netlist::voltage(op_heavy.x, b.vout)) /
        ((kIloadHeavy - kIloadLight) * 1e3) * 1e3;  // mV/mA

    // Line regulation at 50 mA: Vin 3.0 vs 3.6.
    b.vin->set_dc(3.0);
    const DcResult op_lo = dc.solve(b.net, &guess);
    b.vin->set_dc(3.6);
    const DcResult op_hi = dc.solve(b.net, &guess);
    b.vin->set_dc(kVinNom);
    if (!op_lo.converged || !op_hi.converged) return result;
    const double line_reg =
        std::abs(Netlist::voltage(op_hi.x, b.vout) - Netlist::voltage(op_lo.x, b.vout)) /
        std::max(vout_nom, 0.1) / 0.6 * 100.0;  // %/V

    // PSRR at 1 kHz.
    b.vin->set_ac_magnitude(1.0);
    AcAnalysis ac;
    const AcSweep ps = ac.run(b.net, op.x, {1e3});
    b.vin->set_ac_magnitude(0.0);
    const double psrr_db = -20.0 * std::log10(std::max(std::abs(ps.voltage(0, b.vout)), 1e-12));

    // Four settling transients. Helper runs one configured transient and
    // returns the settling time in microseconds (sentinel on failure).
    const double t0 = profile_.t_event;
    const double te = profile_.t_edge;
    auto run_settle = [&]() -> double {
      TranOptions topt;
      topt.t_stop = profile_.t_stop;
      topt.dt = profile_.dt;
      TranAnalysis tran(topt);
      const TranResult tr = tran.run(b.net);
      if (!tr.converged) return 1e3;
      const auto wave = tr.node_waveform(b.vout);
      const auto st = settling_time(tr.time, wave, t0, wave.back(), 0.010);
      return st ? *st * 1e6 : 1e3;
    };

    b.iload->set_waveform(
        Waveform::pwl({{0.0, kIloadLight}, {t0, kIloadLight}, {t0 + te, kIloadHeavy}}));
    const double t_load_up = run_settle();
    b.iload->set_waveform(
        Waveform::pwl({{0.0, kIloadHeavy}, {t0, kIloadHeavy}, {t0 + te, kIloadLight}}));
    const double t_load_down = run_settle();
    b.iload->set_dc(kIloadNom);

    b.vin->set_waveform(Waveform::pwl({{0.0, 2.0}, {t0, 2.0}, {t0 + te, 3.3}}));
    const double t_line_up = run_settle();
    b.vin->set_waveform(Waveform::pwl({{0.0, 3.3}, {t0, 3.3}, {t0 + te, 2.0}}));
    const double t_line_down = run_settle();
    b.vin->set_dc(kVinNom);

    result.metrics[kQuiescentMa] = iq_ma;
    result.metrics[kVoutMinV] = vout_nom;
    result.metrics[kVoutMaxV] = vout_nom;
    result.metrics[kLoadRegMvMa] = load_reg;
    result.metrics[kLineRegPctV] = line_reg;
    result.metrics[kTLoadUpUs] = t_load_up;
    result.metrics[kTLoadDownUs] = t_load_down;
    result.metrics[kTLineUpUs] = t_line_up;
    result.metrics[kTLineDownUs] = t_line_down;
    result.metrics[kPsrrDb] = psrr_db;
    result.simulation_ok = true;
    return result;
  } catch (const std::exception&) {
    return result;
  }
}

}  // namespace maopt::ckt
