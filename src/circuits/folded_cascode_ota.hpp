// Folded-cascode OTA testbench — an *extension* beyond the paper's three
// circuits, exercising a different design space: a single-stage PMOS-input
// folded cascode with a high-swing cascode PMOS mirror load.
//
// Topology:
//   * PMOS input pair M1/M2 (W1,L1), PMOS tail M0 (W2,L2, m=N1) mirrored
//     from a 20 uA diode,
//   * NMOS folding current sinks M3/M4 (W3,L3, m=N2) mirrored from a diode,
//   * NMOS cascodes M5/M6 (W4,L4) with an ideal 0.9 V gate bias,
//   * PMOS cascode mirror M7..M10 (W5,L5, m=N3) with an ideal 0.9 V cascode
//     bias; the diode side (M1 path) mirrors into the output side (M2 path),
//   * load capacitor C at OUT. VDD = 1.8 V, inputs biased at mid-rail.
//
// Signal polarity: M2's gate is the inverting input (out follows -gm2), so
// the unity-gain bench ties OUT to M2's gate and drives M1's gate.
//
// Parameter vector (14): [L1..L5 (um), W1..W5 (um), C (fF), N1..N3 (int)].
// Metrics: f0 = power (mW); constraints = DC gain, CMRR, phase margin,
// settling time, UGF, integrated output noise.
#pragma once

#include "circuits/sizing_problem.hpp"

namespace maopt::ckt {

class FoldedCascodeOta final : public SizingProblem {
 public:
  FoldedCascodeOta();

  const ProblemSpec& spec() const override { return spec_; }
  std::size_t dim() const override { return 14; }
  const Vec& lower_bounds() const override { return lower_; }
  const Vec& upper_bounds() const override { return upper_; }
  const std::vector<bool>& integer_mask() const override { return integer_; }
  std::vector<std::string> parameter_names() const override;

  EvalResult evaluate(const Vec& x) const override;

  /// Persistent-testbench session (see EvalSession).
  std::unique_ptr<EvalSession> make_session() const override;

  /// Monte Carlo mismatch support (see process_variation.hpp).
  void set_process_variation(const ProcessVariation& pv) override { variation_ = pv; }
  bool supports_process_variation() const override { return true; }

  /// Thread-safe variation-pinned evaluation (see TwoStageOta::evaluate_at).
  EvalResult evaluate_at(const Vec& x, const ProcessVariation& pv) const override;
  std::unique_ptr<EvalSession> make_session_at(const ProcessVariation& pv) const override;

  enum Metric {
    kPowerMw = 0,
    kDcGainDb,
    kCmrrDb,
    kPhaseMarginDeg,
    kSettlingNs,
    kUgfMhz,
    kNoiseMvrms,
  };

 private:
  ProblemSpec spec_;
  Vec lower_, upper_;
  std::vector<bool> integer_;
  ProcessVariation variation_;
};

}  // namespace maopt::ckt
