#include "circuits/process_variation.hpp"

#include <cmath>

namespace maopt::ckt {

spice::MosModel vary_model(const spice::MosModel& nominal, Rng& rng, const ProcessVariation& pv) {
  spice::MosModel m = nominal;
  // Global corner shift by device type.
  if (m.type == spice::MosType::Nmos) {
    m.vth0 += pv.nmos_vth_shift;
    m.kp *= pv.nmos_kp_factor;
  } else {
    m.vth0 += pv.pmos_vth_shift;
    m.kp *= pv.pmos_kp_factor;
  }
  // Local mismatch on top.
  if (pv.sigma_vth != 0.0) m.vth0 += rng.normal(0.0, pv.sigma_vth);
  if (pv.sigma_kp_rel != 0.0) {
    const double factor = 1.0 + rng.normal(0.0, pv.sigma_kp_rel);
    m.kp *= std::max(0.05, factor);  // keep the card physical
  }
  return m;
}

const char* corner_name(ProcessCorner corner) {
  switch (corner) {
    case ProcessCorner::TT: return "TT";
    case ProcessCorner::FF: return "FF";
    case ProcessCorner::SS: return "SS";
    case ProcessCorner::FS: return "FS";
    case ProcessCorner::SF: return "SF";
  }
  return "?";
}

ProcessVariation corner_variation(ProcessCorner corner, double vth_step, double kp_step_rel) {
  ProcessVariation pv;
  const auto fast_n = [&] {
    pv.nmos_vth_shift = -vth_step;
    pv.nmos_kp_factor = 1.0 + kp_step_rel;
  };
  const auto slow_n = [&] {
    pv.nmos_vth_shift = vth_step;
    pv.nmos_kp_factor = 1.0 - kp_step_rel;
  };
  const auto fast_p = [&] {
    pv.pmos_vth_shift = -vth_step;
    pv.pmos_kp_factor = 1.0 + kp_step_rel;
  };
  const auto slow_p = [&] {
    pv.pmos_vth_shift = vth_step;
    pv.pmos_kp_factor = 1.0 - kp_step_rel;
  };
  switch (corner) {
    case ProcessCorner::TT: break;
    case ProcessCorner::FF: fast_n(); fast_p(); break;
    case ProcessCorner::SS: slow_n(); slow_p(); break;
    case ProcessCorner::FS: fast_n(); slow_p(); break;
    case ProcessCorner::SF: slow_n(); fast_p(); break;
  }
  return pv;
}

std::vector<EvalResult> evaluate_corners(const SizingProblem& problem, const Vec& x,
                                         double vth_step, double kp_step_rel) {
  std::vector<EvalResult> results;
  for (const auto corner : {ProcessCorner::TT, ProcessCorner::FF, ProcessCorner::SS,
                            ProcessCorner::FS, ProcessCorner::SF})
    results.push_back(problem.evaluate_at(x, corner_variation(corner, vth_step, kp_step_rel)));
  return results;
}

YieldResult estimate_yield(const SizingProblem& problem, const Vec& x, int instances,
                           double sigma_vth, double sigma_kp_rel) {
  YieldResult result;
  result.total = instances;
  for (int k = 0; k < instances; ++k) {
    ProcessVariation pv;
    pv.sigma_vth = sigma_vth;
    pv.sigma_kp_rel = sigma_kp_rel;
    pv.seed = static_cast<std::uint64_t>(k);
    const EvalResult eval = problem.evaluate_at(x, pv);
    if (!eval.simulation_ok) ++result.simulation_failures;
    if (eval.simulation_ok && problem.feasible(eval.metrics)) ++result.feasible;
    result.metric_samples.push_back(eval.metrics);
  }
  return result;
}

}  // namespace maopt::ckt
