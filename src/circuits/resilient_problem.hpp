// Fault-tolerant evaluation layer — extension beyond the paper.
//
// Real SPICE evaluations fail: Newton non-convergence, singular Jacobians,
// step-halving exhaustion in transient, NaN metrics, or a simulator that
// simply never returns. The paper budgets runs in *simulations*, so a run
// must survive such failures without crashing and without losing budget
// accounting. Two decorators provide that:
//
//   ResilientEvaluator    wraps any SizingProblem with a per-attempt
//                         wall-clock deadline, bounded retries (each retry
//                         deterministically jitters the design — the analog
//                         of "nudge the operating point and rerun" in real
//                         flows), exception capture, and NaN/Inf metric
//                         scrubbing. Every failure mode collapses to a
//                         well-formed EvalResult{failure_metrics, ok=false}
//                         and is tallied in a FailureStats report.
//
//   FaultInjectingProblem wraps any SizingProblem and injects seeded,
//                         rate-configurable faults (throw / hang / NaN
//                         metrics / silent garbage) — the test and bench
//                         harness for everything above. Fault decisions are
//                         a pure function of (seed, design vector), so runs
//                         stay deterministic under retries, threading, and
//                         checkpoint/resume replay.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "circuits/sizing_problem.hpp"

namespace maopt::ckt {

/// Why an evaluation attempt failed (the tag recorded per attempt).
enum class FailureKind : std::uint8_t {
  Timeout = 0,         ///< attempt exceeded the wall-clock deadline
  NonConvergence = 1,  ///< solver returned simulation_ok = false
  NonFinite = 2,       ///< solver "succeeded" but produced NaN/Inf metrics
  Exception = 3,       ///< solver threw
};
inline constexpr std::size_t kNumFailureKinds = 4;

const char* to_string(FailureKind kind);

struct ResilientConfig {
  /// Per-attempt wall-clock deadline in seconds; <= 0 disables the deadline
  /// (the attempt runs inline on the calling thread).
  double deadline_seconds = 0.0;
  /// Additional attempts after the first failed one.
  int max_retries = 2;
  /// Retry perturbation per dimension, as a fraction of the parameter range.
  double retry_jitter_frac = 1e-3;
  /// Plausibility screen: any |metric| beyond this is classified NonFinite
  /// even when the solver reports success. A simulator that silently writes
  /// garbage is otherwise undetectable; set this to the largest magnitude
  /// any real metric of the wrapped problem can take.
  double max_metric_magnitude = 1e30;
  /// Stream seed for the deterministic retry jitter.
  std::uint64_t seed = 0x5EEDF00DULL;
};

/// Aggregated failure report (a consistent snapshot; see
/// ResilientEvaluator::stats()).
struct FailureStats {
  std::uint64_t evaluations = 0;  ///< calls to evaluate()
  std::uint64_t attempts = 0;     ///< inner evaluations incl. retries
  std::uint64_t retries = 0;      ///< attempts beyond each call's first
  std::uint64_t failures = 0;     ///< calls that exhausted all retries
  std::array<std::uint64_t, kNumFailureKinds> by_kind{};  ///< failed attempts per kind

  /// One-line human-readable summary, e.g.
  /// "120 evals, 9 failed (3 timeout, 4 non-convergence, 0 non-finite,
  ///  2 exception), 14 retries".
  std::string report() const;
};

/// Decorator: makes any SizingProblem safe to call from an optimizer.
/// Thread-safe whenever the inner problem's evaluate() is. `inner` is not
/// owned and must outlive this object.
class ResilientEvaluator final : public SizingProblem {
 public:
  explicit ResilientEvaluator(const SizingProblem& inner, ResilientConfig config = {});
  /// Blocks until abandoned (timed-out) attempts still running on detached
  /// threads have drained, so the inner problem can be safely destroyed.
  ~ResilientEvaluator() override;

  ResilientEvaluator(const ResilientEvaluator&) = delete;
  ResilientEvaluator& operator=(const ResilientEvaluator&) = delete;

  const ProblemSpec& spec() const override { return inner_->spec(); }
  std::size_t dim() const override { return inner_->dim(); }
  const Vec& lower_bounds() const override { return inner_->lower_bounds(); }
  const Vec& upper_bounds() const override { return inner_->upper_bounds(); }
  const std::vector<bool>& integer_mask() const override { return inner_->integer_mask(); }
  std::vector<std::string> parameter_names() const override { return inner_->parameter_names(); }
  Vec failure_metrics() const override { return inner_->failure_metrics(); }

  /// Never throws from the inner solver and never returns non-finite
  /// metrics: every failure mode yields {failure_metrics(), ok=false}.
  EvalResult evaluate(const Vec& x) const override;

  /// Variation-pinned evaluation with the full deadline/retry/scrub pipeline;
  /// `pv` is forwarded to the inner problem's evaluate_at on every attempt
  /// (including deadline-guarded ones), so corner sweeps keep per-attempt
  /// fault tolerance. Thread-safe like evaluate().
  EvalResult evaluate_at(const Vec& x, const ProcessVariation& pv) const override;
  std::unique_ptr<EvalSession> make_session_at(const ProcessVariation& pv) const override;
  bool supports_process_variation() const override {
    return inner_->supports_process_variation();
  }
  std::uint64_t content_fingerprint() const override { return inner_->content_fingerprint(); }

  /// Persistent-session support: wraps the inner problem's session in the
  /// same retry/scrub logic — but only when deadline_seconds <= 0, where
  /// attempts run inline on the calling thread. With a deadline, a timed-out
  /// attempt keeps running on a detached thread and would race any reused
  /// session state, so the default per-call forwarding session is returned
  /// instead (correct, just without amortization).
  std::unique_ptr<EvalSession> make_session() const override;

  FailureStats stats() const;
  const ResilientConfig& config() const { return config_; }

  /// Telemetry for one evaluate() call: retries it consumed and, when it
  /// failed (or retried), the kind of the last failed attempt.
  struct CallStats {
    std::uint32_t retries = 0;
    bool failed = false;  ///< every attempt failed; the caller got failure_metrics
    FailureKind last_kind = FailureKind::NonConvergence;  ///< valid when failed or retries > 0
  };

  /// The CallStats of the most recent evaluate() on the *calling thread*
  /// (thread-local, shared across ResilientEvaluator instances). Optimizers
  /// read it right after the evaluation they just issued to attribute retry
  /// counts and failure kinds to individual SimulationCompleted events —
  /// exact even when actor workers evaluate concurrently, which a diff of
  /// the global stats() could not be.
  static CallStats last_call_stats();

 private:
  class Session;

  struct Attempt {
    EvalResult result;
    FailureKind kind = FailureKind::NonConvergence;
    bool ok = false;
  };
  /// `session` (optional) is used for the inner evaluation; inline-attempt
  /// mode only — the deadline path always evaluates through inner_ (with the
  /// attempt's variation setting forwarded).
  Attempt run_attempt(const Vec& x, EvalSession* session, const ProcessVariation& pv) const;
  EvalResult evaluate_with(const Vec& x, EvalSession* session, const ProcessVariation& pv) const;

  const SizingProblem* inner_;
  ResilientConfig config_;
  mutable std::atomic<std::uint64_t> evaluations_{0};
  mutable std::atomic<std::uint64_t> attempts_{0};
  mutable std::atomic<std::uint64_t> retries_{0};
  mutable std::atomic<std::uint64_t> failures_{0};
  mutable std::array<std::atomic<std::uint64_t>, kNumFailureKinds> by_kind_{};
  mutable std::atomic<int> inflight_{0};  ///< abandoned attempts still running
};

/// Seeded fault injection rates; the four rates must sum to <= 1.
struct FaultInjectionConfig {
  double throw_rate = 0.0;    ///< throw std::runtime_error
  double hang_rate = 0.0;     ///< sleep hang_seconds before answering
  double nan_rate = 0.0;      ///< simulation_ok = true but NaN metrics
  double garbage_rate = 0.0;  ///< simulation_ok = true, absurd finite metrics
  double hang_seconds = 0.05;
  std::uint64_t seed = 0xFau;

  /// Spreads `total_rate` evenly over throw / hang / NaN / garbage.
  static FaultInjectionConfig mixed(double total_rate, std::uint64_t seed = 0xFau,
                                    double hang_seconds = 0.05);
};

/// Decorator used by tests and the fault-tolerance demo: injects failures at
/// configurable rates. The fault drawn for a design depends only on
/// (seed, x), never on call order, so injection is thread-safe and
/// replay-deterministic. `inner` is not owned and must outlive this object.
class FaultInjectingProblem final : public SizingProblem {
 public:
  explicit FaultInjectingProblem(const SizingProblem& inner, FaultInjectionConfig config);

  const ProblemSpec& spec() const override { return inner_->spec(); }
  std::size_t dim() const override { return inner_->dim(); }
  const Vec& lower_bounds() const override { return inner_->lower_bounds(); }
  const Vec& upper_bounds() const override { return inner_->upper_bounds(); }
  const std::vector<bool>& integer_mask() const override { return inner_->integer_mask(); }
  std::vector<std::string> parameter_names() const override { return inner_->parameter_names(); }
  Vec failure_metrics() const override { return inner_->failure_metrics(); }

  EvalResult evaluate(const Vec& x) const override;

  /// Variation-pinned injection: the fault decision is a pure function of
  /// (seed, x) at nominal — identical to evaluate() — and of (seed, x, pv)
  /// under an enabled variation, so each corner / Monte Carlo instance draws
  /// its own deterministic fault. Replay- and thread-deterministic either way.
  EvalResult evaluate_at(const Vec& x, const ProcessVariation& pv) const override;
  bool supports_process_variation() const override {
    return inner_->supports_process_variation();
  }
  std::uint64_t content_fingerprint() const override { return inner_->content_fingerprint(); }

  /// Faults injected so far (throws + hangs + NaN + garbage).
  std::uint64_t injected() const { return injected_.load(); }
  const FaultInjectionConfig& config() const { return config_; }

 private:
  const SizingProblem* inner_;
  FaultInjectionConfig config_;
  mutable std::atomic<std::uint64_t> injected_{0};
};

}  // namespace maopt::ckt
