// Closed-form SizingProblems used by unit tests, quick examples, and the
// optimizer-behaviour benches: they exercise the full optimizer stack in
// milliseconds with known optima, independent of the circuit simulator.
#pragma once

#include "circuits/sizing_problem.hpp"

namespace maopt::ckt {

/// f0(x) = sum_i (x_i - target)^2 on [0,1]^d, subject to
///   mean(x) >= mean_min   and   x_0 <= x0_max.
/// With target = 0.3, mean_min = 0.25, x0_max = 0.6 the optimum is
/// x = (0.3, ..., 0.3) with f0 = 0 and both constraints inactive-but-close.
class ConstrainedQuadratic final : public SizingProblem {
 public:
  explicit ConstrainedQuadratic(std::size_t dim, double target = 0.3, double mean_min = 0.25,
                                double x0_max = 0.6);

  const ProblemSpec& spec() const override { return spec_; }
  std::size_t dim() const override { return lower_.size(); }
  const Vec& lower_bounds() const override { return lower_; }
  const Vec& upper_bounds() const override { return upper_; }
  const std::vector<bool>& integer_mask() const override { return integer_; }
  std::vector<std::string> parameter_names() const override;
  EvalResult evaluate(const Vec& x) const override;

 private:
  ProblemSpec spec_;
  Vec lower_, upper_;
  std::vector<bool> integer_;
  double target_;
  double mean_min_;
  double x0_max_;
};

/// Nonconvex benchmark: f0 = Rosenbrock(x) on [-2, 2]^d, subject to
/// ||x||^2 <= radius^2 (the optimum x = 1 sits near the boundary for
/// radius^2 slightly above d). The last parameter is integer-constrained to
/// exercise the mixed-integer path.
class ConstrainedRosenbrock final : public SizingProblem {
 public:
  explicit ConstrainedRosenbrock(std::size_t dim, double radius2_margin = 1.5);

  const ProblemSpec& spec() const override { return spec_; }
  std::size_t dim() const override { return lower_.size(); }
  const Vec& lower_bounds() const override { return lower_; }
  const Vec& upper_bounds() const override { return upper_; }
  const std::vector<bool>& integer_mask() const override { return integer_; }
  std::vector<std::string> parameter_names() const override;
  EvalResult evaluate(const Vec& x) const override;

 private:
  ProblemSpec spec_;
  Vec lower_, upper_;
  std::vector<bool> integer_;
  double radius2_;
};

}  // namespace maopt::ckt
