#include "circuits/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace maopt::ckt {

SensitivityResult sensitivity_analysis(const SizingProblem& problem, const Vec& x,
                                       double rel_step) {
  const std::size_t d = problem.dim();
  const std::size_t m = problem.num_metrics();
  SensitivityResult result;
  result.jacobian.resize(m, d);
  result.normalized.resize(m, d);

  const EvalResult base = problem.evaluate(problem.clip(x));
  result.base_metrics = base.metrics;
  result.ok = base.simulation_ok;
  if (!result.ok) return result;

  const Vec& lo = problem.lower_bounds();
  const Vec& hi = problem.upper_bounds();
  const auto& integers = problem.integer_mask();

  for (std::size_t j = 0; j < d; ++j) {
    const double range = hi[j] - lo[j];
    double step = integers[j] ? 1.0 : rel_step * range;
    // Clip probes to the box; fall back to one-sided at the edges.
    double up = std::min(x[j] + step, hi[j]);
    double down = std::max(x[j] - step, lo[j]);
    if (up == down) {  // degenerate (step larger than box): skip
      for (std::size_t i = 0; i < m; ++i) result.jacobian(i, j) = 0.0;
      continue;
    }
    Vec xp = x, xm = x;
    xp[j] = up;
    xm[j] = down;
    const EvalResult rp = problem.evaluate(problem.clip(xp));
    const EvalResult rm = problem.evaluate(problem.clip(xm));
    if (!rp.simulation_ok || !rm.simulation_ok) {
      result.ok = false;
      continue;
    }
    const double denom = up - down;
    for (std::size_t i = 0; i < m; ++i) {
      const double grad = (rp.metrics[i] - rm.metrics[i]) / denom;
      result.jacobian(i, j) = grad;
      const double metric_scale = std::max(std::abs(base.metrics[i]), 1e-12);
      result.normalized(i, j) = grad * range / metric_scale;
    }
  }
  return result;
}

std::string format_sensitivity_table(const SizingProblem& problem,
                                     const SensitivityResult& result) {
  std::ostringstream out;
  const auto params = problem.parameter_names();
  const auto& spec = problem.spec();
  std::vector<std::string> metrics{spec.target_name};
  for (const auto& c : spec.constraints) metrics.push_back(c.name);

  out << "Normalized sensitivities (d metric %% per full parameter range):\n";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%-16s", "");
  out << buf;
  for (const auto& p : params) {
    std::snprintf(buf, sizeof buf, "%9s", p.c_str());
    out << buf;
  }
  out << "\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%-16s", metrics[i].c_str());
    out << buf;
    std::size_t strongest = 0;
    for (std::size_t j = 1; j < params.size(); ++j)
      if (std::abs(result.normalized(i, j)) > std::abs(result.normalized(i, strongest)))
        strongest = j;
    for (std::size_t j = 0; j < params.size(); ++j) {
      std::snprintf(buf, sizeof buf, "%8.2f%c", result.normalized(i, j),
                    j == strongest ? '*' : ' ');
      out << buf;
    }
    out << "\n";
  }
  out << "(* = strongest knob for that metric)\n";
  return out.str();
}

}  // namespace maopt::ckt
