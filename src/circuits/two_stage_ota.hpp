// Two-stage Miller-compensated OTA testbench (paper Fig. 4a, Table I, Eq. 7).
//
// Topology (classic Allen-Holberg two-stage):
//   * NMOS input pair M1/M2 (W1,L1), PMOS mirror load M3/M4 (W2,L2),
//   * NMOS tail M5 (W3,L3, m=N1) mirrored from a 20 uA bias diode M8 (W3,L3),
//   * second stage: PMOS common-source M6 (W4,L4, m=N2) with NMOS sink
//     M7 (W5,L5, m=N3),
//   * nulling resistor R in series with Miller cap Cf from the first-stage
//     output to OUT, load capacitor C at OUT. VDD = 1.8 V, inputs biased at
//     mid-rail.
//
// Parameter vector (natural units, matching Table I):
//   [L1..L5 (um), W1..W5 (um), R (kOhm), C (fF), Cf (fF), N1..N3 (integer)]
//
// Metrics: f0 = power (mW); constraints = DC gain (dB), CMRR (dB), PSRR (dB),
// phase margin (deg), settling time (ns), unity-gain frequency (MHz),
// output swing (V), integrated output noise (mVrms)  — the Eq. 7 set.
#pragma once

#include "circuits/sizing_problem.hpp"

namespace maopt::ckt {

class TwoStageOta final : public SizingProblem {
 public:
  TwoStageOta();

  const ProblemSpec& spec() const override { return spec_; }
  std::size_t dim() const override { return 16; }
  const Vec& lower_bounds() const override { return lower_; }
  const Vec& upper_bounds() const override { return upper_; }
  const std::vector<bool>& integer_mask() const override { return integer_; }
  std::vector<std::string> parameter_names() const override;

  EvalResult evaluate(const Vec& x) const override;

  /// Persistent-testbench session: amortizes netlist construction and solver
  /// workspaces across same-topology designs (see EvalSession).
  std::unique_ptr<EvalSession> make_session() const override;

  /// Monte Carlo mismatch support (see process_variation.hpp).
  void set_process_variation(const ProcessVariation& pv) override { variation_ = pv; }
  bool supports_process_variation() const override { return true; }

  /// Thread-safe variation-pinned evaluation: simulates under `pv` without
  /// touching the ambient variation state (the sweep-engine primitive).
  EvalResult evaluate_at(const Vec& x, const ProcessVariation& pv) const override;
  std::unique_ptr<EvalSession> make_session_at(const ProcessVariation& pv) const override;

  /// Indices of the metric columns, for tests and reporting.
  enum Metric {
    kPowerMw = 0,
    kDcGainDb,
    kCmrrDb,
    kPsrrDb,
    kPhaseMarginDeg,
    kSettlingNs,
    kUgfMhz,
    kSwingV,
    kNoiseMvrms,
  };

 private:
  ProblemSpec spec_;
  Vec lower_, upper_;
  std::vector<bool> integer_;
  ProcessVariation variation_;
};

}  // namespace maopt::ckt
