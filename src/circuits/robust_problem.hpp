// Robust (corner-aware) optimization — extension beyond the paper.
//
// RobustProblem decorates any variation-capable SizingProblem so that one
// "evaluation" simulates the design at a set of process corners and reports
// the WORST value of every metric (worst per the corresponding constraint
// direction; the target metric reports its maximum, i.e. worst for
// minimization). An optimizer driving a RobustProblem therefore searches
// for designs that meet spec at every corner — design-for-robustness with
// zero changes to the optimizer stack. Each evaluation costs
// |corners| simulations; budgets should be scaled accordingly.
#pragma once

#include <memory>

#include "circuits/process_variation.hpp"
#include "circuits/sizing_problem.hpp"

namespace maopt::ckt {

class RobustProblem final : public SizingProblem {
 public:
  /// Wraps `inner` (not owned; must outlive this object and support process
  /// variation). Default corner set: all five classic corners.
  explicit RobustProblem(SizingProblem& inner,
                         std::vector<ProcessCorner> corners = {ProcessCorner::TT,
                                                               ProcessCorner::FF,
                                                               ProcessCorner::SS,
                                                               ProcessCorner::FS,
                                                               ProcessCorner::SF},
                         double vth_step = 0.03, double kp_step_rel = 0.10);

  const ProblemSpec& spec() const override { return inner_->spec(); }
  std::size_t dim() const override { return inner_->dim(); }
  const Vec& lower_bounds() const override { return inner_->lower_bounds(); }
  const Vec& upper_bounds() const override { return inner_->upper_bounds(); }
  const std::vector<bool>& integer_mask() const override { return inner_->integer_mask(); }
  std::vector<std::string> parameter_names() const override { return inner_->parameter_names(); }

  /// Worst-case metrics over the corner set. NOT thread-safe (mutates the
  /// inner problem's variation state during the sweep).
  EvalResult evaluate(const Vec& x) const override;

  std::size_t num_corners() const { return corners_.size(); }

 private:
  SizingProblem* inner_;
  std::vector<ProcessCorner> corners_;
  double vth_step_;
  double kp_step_rel_;
};

}  // namespace maopt::ckt
