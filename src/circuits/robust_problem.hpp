// Robust (corner-aware) and yield (Monte Carlo mismatch) optimization —
// extension beyond the paper.
//
// Both problems are thin configurations of the fault-tolerant batched sweep
// engine (variation_sweep.hpp):
//
//   RobustProblem  one evaluation simulates the design at a set of process
//                  corners and aggregates (worst-case by default), so an
//                  optimizer searches for designs that meet spec at every
//                  corner — design-for-robustness with zero changes to the
//                  optimizer stack.
//
//   YieldProblem   one evaluation simulates the design under N seeded Monte
//                  Carlo mismatch instances and aggregates (empirical yield
//                  quantile by default), so the optimizer maximizes the
//                  value the target fraction of fabricated parts achieves.
//
// Each evaluation costs |variants| simulations; budgets should be scaled
// accordingly. When the wrapped problem is an eval::EvalService the variants
// of one evaluation run as a single parallel batch with per-variant cache
// keys; partial simulation failures degrade per the configured
// SweepFailurePolicy instead of poisoning the evaluation.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "circuits/process_variation.hpp"
#include "circuits/variation_sweep.hpp"

namespace maopt::ckt {

/// Corner-sweep configuration. Defaults reproduce the classic five-corner
/// worst-case sweep.
struct RobustConfig {
  std::vector<ProcessCorner> corners = {ProcessCorner::TT, ProcessCorner::FF, ProcessCorner::SS,
                                        ProcessCorner::FS, ProcessCorner::SF};
  double vth_step = 0.03;
  double kp_step_rel = 0.10;
  SweepPolicyConfig policy;
};

class RobustProblem final : public VariationSweepProblem {
 public:
  /// Wraps `inner` (not owned; must outlive this object; must support
  /// process variation). Throws std::invalid_argument on an empty or
  /// duplicated corner set, non-finite steps, or invalid policy parameters.
  /// The default config is the five classic corners with worst-case
  /// aggregation and the penalize-failed-variant partial-failure policy.
  explicit RobustProblem(const SizingProblem& inner, RobustConfig config = {});

  /// Legacy corner-list constructors (worst-case aggregation, fail-fast on a
  /// failed corner — the semantics of the original serial implementation).
  /// The initializer_list overload exists so braced corner lists — including
  /// the empty `{}` — keep selecting the legacy semantics.
  RobustProblem(const SizingProblem& inner, std::initializer_list<ProcessCorner> corners,
                double vth_step = 0.03, double kp_step_rel = 0.10);
  RobustProblem(const SizingProblem& inner, std::vector<ProcessCorner> corners,
                double vth_step = 0.03, double kp_step_rel = 0.10);

  std::size_t num_corners() const { return num_variants(); }
  const RobustConfig& config() const { return config_; }

 private:
  RobustConfig config_;
};

/// Gaussian device-mismatch settings for a Monte Carlo yield sweep: each of
/// the `instances` variants draws per-device mismatch from seed
/// seed_base + instance index.
struct MismatchSettings {
  double sigma_vth = 0.02;     ///< absolute threshold spread [V]
  double sigma_kp_rel = 0.05;  ///< relative KP spread
  int instances = 64;
  std::uint64_t seed_base = 1;  ///< seed 0 would make instance 0 nominal-like
};

/// Contract-checks mismatch settings: instances >= 1, sigmas finite and
/// >= 0, at least one sigma > 0 (an all-zero spread would sweep N identical
/// nominal instances). Throws ContractViolation (std::invalid_argument).
void validate_mismatch_settings(const MismatchSettings& settings);

struct YieldConfig {
  MismatchSettings mismatch;
  SweepPolicyConfig policy = default_policy();

  /// Yield runs aggregate by quantile out of the box; every other policy
  /// field keeps its SweepPolicyConfig default.
  static SweepPolicyConfig default_policy() {
    SweepPolicyConfig p;
    p.aggregation = RobustAggregation::YieldQuantile;
    return p;
  }
};

class YieldProblem final : public VariationSweepProblem {
 public:
  /// Wraps `inner` (not owned; must outlive this object; must support
  /// process variation).
  YieldProblem(const SizingProblem& inner, YieldConfig config);

  std::size_t num_instances() const { return num_variants(); }
  const YieldConfig& config() const { return config_; }

 private:
  YieldConfig config_;
};

}  // namespace maopt::ckt
