// Figure-of-merit function g[f(x)] (paper Eq. 2).
//
// As discussed in DESIGN.md, Eq. 2 read literally penalizes satisfied
// constraints (the absolute value is non-negative); we implement the
// intended DNN-Opt semantics:
//
//   g = w0 * f0 / f0_ref  +  sum_i min(1, w_i * viol_i)
//
// where viol_i is the signed normalized violation (0 when satisfied). The
// reference f0_ref is the median |f0| of the initial sample set, which puts
// the target term on a comparable scale across circuits so that Fig. 5's
// log10(average FoM) plots are meaningful. A design is strictly better than
// every infeasible design once feasible, and feasible designs are ranked by
// the target metric, because each clamped penalty term is >= the largest
// possible target contribution by construction (w0 << 1).
#pragma once

#include <span>

#include "circuits/sizing_problem.hpp"

namespace maopt::ckt {

/// How Eq. 2's constraint terms are interpreted (see the header comment and
/// DESIGN.md): `Corrected` penalizes only violations (DNN-Opt semantics,
/// the default everywhere); `LiteralEq2` applies min(1, w*|f-c|/|c|) exactly
/// as printed, which also penalizes satisfied constraints — kept selectable
/// so the ablation bench can demonstrate why the literal reading cannot be
/// what the authors ran.
enum class FomSemantics { Corrected, LiteralEq2 };

class FomEvaluator {
 public:
  /// `f0_reference` must be positive; pass the median |f0| of the initial
  /// sample set (use fit_reference for that).
  FomEvaluator(const SizingProblem& problem, double f0_reference,
               FomSemantics semantics = FomSemantics::Corrected);

  /// Builds an evaluator with f0_ref = median |f0| over `metric_rows`.
  static FomEvaluator fit_reference(const SizingProblem& problem,
                                    const std::vector<Vec>& metric_rows);

  /// g[f] for a metric vector [f0, f1..fm].
  double operator()(std::span<const double> metrics) const;

  /// Gradient of g with respect to each metric (subgradient at clamp
  /// boundaries); used to backpropagate through the critic during actor
  /// training.
  Vec gradient(std::span<const double> metrics) const;

  double f0_reference() const { return f0_ref_; }
  FomSemantics semantics() const { return semantics_; }
  const SizingProblem& problem() const { return *problem_; }

 private:
  const SizingProblem* problem_;
  double f0_ref_;
  FomSemantics semantics_;
};

}  // namespace maopt::ckt
