#include "circuits/analytic_problems.hpp"

#include <cmath>

namespace maopt::ckt {

ConstrainedQuadratic::ConstrainedQuadratic(std::size_t dim, double target, double mean_min,
                                           double x0_max)
    : target_(target), mean_min_(mean_min), x0_max_(x0_max) {
  spec_.name = "constrained_quadratic";
  spec_.target_name = "sq_error";
  spec_.target_unit = "";
  spec_.target_weight = 1.0;
  spec_.constraints = {
      {"mean", "", ConstraintKind::GreaterEqual, mean_min, 1.0},
      {"x0", "", ConstraintKind::LessEqual, x0_max, 1.0},
  };
  lower_.assign(dim, 0.0);
  upper_.assign(dim, 1.0);
  integer_.assign(dim, false);
}

std::vector<std::string> ConstrainedQuadratic::parameter_names() const {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < dim(); ++i) names.push_back("x" + std::to_string(i));
  return names;
}

EvalResult ConstrainedQuadratic::evaluate(const Vec& x) const {
  EvalResult r;
  double f0 = 0.0, mean = 0.0;
  for (const double xi : x) {
    f0 += (xi - target_) * (xi - target_);
    mean += xi;
  }
  mean /= static_cast<double>(x.size());
  r.metrics = {f0, mean, x[0]};
  return r;
}

ConstrainedRosenbrock::ConstrainedRosenbrock(std::size_t dim, double radius2_margin) {
  radius2_ = static_cast<double>(dim) + radius2_margin;
  spec_.name = "constrained_rosenbrock";
  spec_.target_name = "rosenbrock";
  spec_.target_unit = "";
  spec_.target_weight = 1.0;
  spec_.constraints = {
      {"norm2", "", ConstraintKind::LessEqual, radius2_, 1.0},
  };
  lower_.assign(dim, -2.0);
  upper_.assign(dim, 2.0);
  integer_.assign(dim, false);
  integer_.back() = true;
}

std::vector<std::string> ConstrainedRosenbrock::parameter_names() const {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < dim(); ++i) names.push_back("x" + std::to_string(i));
  return names;
}

EvalResult ConstrainedRosenbrock::evaluate(const Vec& x) const {
  EvalResult r;
  double f0 = 0.0, norm2 = 0.0;
  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    const double a = x[i + 1] - x[i] * x[i];
    const double b = 1.0 - x[i];
    f0 += 100.0 * a * a + b * b;
  }
  for (const double xi : x) norm2 += xi * xi;
  r.metrics = {f0, norm2};
  return r;
}

}  // namespace maopt::ckt
