// Process variation and yield estimation — an extension beyond the paper.
//
// Each testbench can be put into a "varied" mode where every MOSFET's
// threshold voltage and transconductance parameter receive independent,
// deterministic Gaussian perturbations (local mismatch), seeded per Monte
// Carlo instance. estimate_yield() then answers the question the paper's
// nominal-only evaluation leaves open: how robust is an optimized design to
// fabrication spread?
#pragma once

#include <cstdint>

#include "circuits/sizing_problem.hpp"
#include "spice/mosfet.hpp"

namespace maopt::ckt {

/// Draws one perturbed model card from `rng` (each call = one device):
/// global corner shifts first, then local Gaussian mismatch.
spice::MosModel vary_model(const spice::MosModel& nominal, Rng& rng, const ProcessVariation& pv);

/// Standard process corners: fast/slow NMOS x fast/slow PMOS.
enum class ProcessCorner { TT, FF, SS, FS, SF };

const char* corner_name(ProcessCorner corner);

/// Deterministic ProcessVariation for a corner: fast = vth lowered by
/// `vth_step` and KP raised by `kp_step_rel`; slow = the opposite.
ProcessVariation corner_variation(ProcessCorner corner, double vth_step = 0.03,
                                  double kp_step_rel = 0.10);

/// Evaluates `x` at all five corners; returns one EvalResult per corner in
/// enum order. Runs through the thread-safe evaluate_at primitive, so the
/// problem's ambient variation state is never touched.
std::vector<EvalResult> evaluate_corners(const SizingProblem& problem, const Vec& x,
                                         double vth_step = 0.03, double kp_step_rel = 0.10);

struct YieldResult {
  int feasible = 0;
  int total = 0;
  int simulation_failures = 0;
  double yield() const { return total > 0 ? static_cast<double>(feasible) / total : 0.0; }
  /// Per-instance metric vectors (for spread reporting).
  std::vector<Vec> metric_samples;
};

/// Evaluates design `x` under `instances` Monte Carlo mismatch draws with
/// the given sigmas (instance k draws from seed k). Runs through the
/// thread-safe evaluate_at primitive, so the problem's ambient variation
/// state is never touched and the call is safe under concurrent evaluates.
YieldResult estimate_yield(const SizingProblem& problem, const Vec& x, int instances,
                           double sigma_vth, double sigma_kp_rel);

}  // namespace maopt::ckt
