// Plain-text serialization of MLP weights.
//
// Format (line-oriented, locale-independent):
//   maopt-mlp 1            <- magic + version
//   params <count>         <- number of parameter blocks
//   block <size> v0 v1 ... <- one line per (weight|bias) vector, hex doubles
//
// Only parameter *values* travel; the architecture must match at load time
// (sizes are validated). Hex float formatting makes round-trips bit-exact.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/mlp.hpp"

namespace maopt::nn {

void save_mlp(std::ostream& out, Mlp& net);
void save_mlp(const std::string& path, Mlp& net);

/// Loads weights into an existing, architecturally identical network.
/// Throws std::runtime_error on magic/size mismatch or malformed input.
void load_mlp(std::istream& in, Mlp& net);
void load_mlp(const std::string& path, Mlp& net);

}  // namespace maopt::nn
