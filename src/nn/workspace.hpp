// Scratch-buffer arena for the training hot path.
//
// Every Layer owns a Workspace whose numbered Mat slots persist across
// forward/backward calls: after the first minibatch of a given shape, the
// thousands of Adam steps in a run touch the allocator zero times. Slots are
// reshaped with Matrix::ensure_shape, which reuses capacity and leaves
// contents unspecified — acquirers must overwrite every entry. Reading a
// value cached by an earlier acquire goes through peek(), which verifies
// the slot still has the expected shape instead of silently handing back a
// reshaped buffer.
//
// Slots are heap-allocated individually so the references returned by
// acquire()/peek() stay valid until clear(), even when a later acquire
// grows the slot table. (A flat vector<Mat> would reallocate on growth and
// dangle every outstanding reference — caught by ASan the moment a layer
// held its forward slot across the first backward-slot acquire.)
#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "linalg/matrix.hpp"

namespace maopt::nn {

using linalg::Mat;

class Workspace {
 public:
  /// Any id at or above this is a corrupted or miscomputed slot id, not a
  /// legitimate scratch buffer (layers use single-digit ids).
  static constexpr std::size_t kMaxSlots = 64;

  /// Slot `id` reshaped to (rows x cols); grows the slot table on demand.
  /// Contents are unspecified — the acquirer must overwrite every entry
  /// before any read (checked builds enforce this for borrowed inputs via
  /// Matrix::generation()). The returned reference stays valid until
  /// clear(), regardless of later acquires.
  Mat& acquire(std::size_t id, std::size_t rows, std::size_t cols) {
    MAOPT_CHECK(id < kMaxSlots, "Workspace::acquire: slot id out of range");
    MAOPT_CHECK(cols == 0 || rows <= std::numeric_limits<std::size_t>::max() / cols,
                "Workspace::acquire: rows * cols overflows");
    if (id >= slots_.size()) slots_.resize(id + 1);
    if (!slots_[id]) slots_[id] = std::make_unique<Mat>();
    slots_[id]->ensure_shape(rows, cols);
    return *slots_[id];
  }

  /// Read-only access to the values an earlier acquire() left in slot `id`.
  /// Unlike re-acquiring, this neither reshapes nor invalidates the buffer;
  /// it checks the slot exists and still has the expected shape (catches
  /// backward calls whose batch does not match the cached forward).
  const Mat& peek(std::size_t id, std::size_t rows, std::size_t cols) const {
    MAOPT_CHECK(id < slots_.size() && slots_[id], "Workspace::peek: slot never acquired");
    const Mat& m = *slots_[id];
    MAOPT_CHECK(m.rows() == rows && m.cols() == cols,
                "Workspace::peek: cached slot shape does not match");
    return m;
  }

  std::size_t num_slots() const { return slots_.size(); }

  /// Releases all slot storage (shapes and capacity).
  void clear() { slots_.clear(); }

 private:
  // unique_ptr per slot = address stability across slot-table growth.
  std::vector<std::unique_ptr<Mat>> slots_;
};

}  // namespace maopt::nn
