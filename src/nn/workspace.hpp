// Scratch-buffer arena for the training hot path.
//
// Every Layer owns a Workspace whose numbered Mat slots persist across
// forward/backward calls: after the first minibatch of a given shape, the
// thousands of Adam steps in a run touch the allocator zero times. Slots are
// reshaped with Matrix::ensure_shape, which reuses capacity and leaves
// contents unspecified — acquirers must overwrite every entry.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace maopt::nn {

using linalg::Mat;

class Workspace {
 public:
  /// Slot `id` reshaped to (rows x cols); grows the slot table on demand.
  Mat& acquire(std::size_t id, std::size_t rows, std::size_t cols) {
    if (id >= slots_.size()) slots_.resize(id + 1);
    slots_[id].ensure_shape(rows, cols);
    return slots_[id];
  }

  /// Releases all slot storage (shapes and capacity).
  void clear() { slots_.clear(); }

 private:
  std::vector<Mat> slots_;
};

}  // namespace maopt::nn
