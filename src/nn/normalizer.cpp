#include "nn/normalizer.hpp"

#include <cmath>
#include <stdexcept>

namespace maopt::nn {

RangeScaler::RangeScaler(Vec lower, Vec upper) : lower_(std::move(lower)), upper_(std::move(upper)) {
  if (lower_.size() != upper_.size()) throw std::invalid_argument("RangeScaler: bound size mismatch");
  half_span_.resize(lower_.size());
  center_.resize(lower_.size());
  for (std::size_t i = 0; i < lower_.size(); ++i) {
    if (!(upper_[i] > lower_[i])) throw std::invalid_argument("RangeScaler: upper must exceed lower");
    half_span_[i] = 0.5 * (upper_[i] - lower_[i]);
    center_[i] = 0.5 * (upper_[i] + lower_[i]);
  }
}

Vec RangeScaler::to_unit(const Vec& x) const {
  if (x.size() != dim()) throw std::invalid_argument("RangeScaler::to_unit: size mismatch");
  Vec u(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) u[i] = (x[i] - center_[i]) / half_span_[i];
  return u;
}

Vec RangeScaler::from_unit(const Vec& u) const {
  if (u.size() != dim()) throw std::invalid_argument("RangeScaler::from_unit: size mismatch");
  Vec x(u.size());
  for (std::size_t i = 0; i < u.size(); ++i) x[i] = center_[i] + half_span_[i] * u[i];
  return x;
}

Mat RangeScaler::to_unit(const Mat& x) const {
  Mat u(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < x.cols(); ++c) u(r, c) = (x(r, c) - center_[c]) / half_span_[c];
  return u;
}

Mat RangeScaler::from_unit(const Mat& u) const {
  Mat x(u.rows(), u.cols());
  for (std::size_t r = 0; r < u.rows(); ++r)
    for (std::size_t c = 0; c < u.cols(); ++c) x(r, c) = center_[c] + half_span_[c] * u(r, c);
  return x;
}

Vec RangeScaler::delta_to_unit(const Vec& dx) const {
  Vec du(dx.size());
  for (std::size_t i = 0; i < dx.size(); ++i) du[i] = dx[i] / half_span_[i];
  return du;
}

Vec RangeScaler::delta_from_unit(const Vec& du) const {
  Vec dx(du.size());
  for (std::size_t i = 0; i < du.size(); ++i) dx[i] = du[i] * half_span_[i];
  return dx;
}

void ZScoreNormalizer::fit(const Mat& samples) {
  if (samples.rows() == 0) throw std::invalid_argument("ZScoreNormalizer::fit: empty sample set");
  const std::size_t n = samples.rows(), d = samples.cols();
  mean_.assign(d, 0.0);
  std_.assign(d, 0.0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < d; ++c) mean_[c] += samples(r, c);
  for (auto& m : mean_) m /= static_cast<double>(n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < d; ++c) {
      const double dlt = samples(r, c) - mean_[c];
      std_[c] += dlt * dlt;
    }
  for (auto& s : std_) {
    s = std::sqrt(s / static_cast<double>(n));
    if (s < 1e-12) s = 1.0;  // constant column: pass through centered
  }
}

Mat ZScoreNormalizer::transform(const Mat& x) const {
  Mat z;
  transform_into(x, z);
  return z;
}

void ZScoreNormalizer::transform_into(const Mat& x, Mat& z) const {
  z.ensure_shape(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < x.cols(); ++c) z(r, c) = (x(r, c) - mean_[c]) / std_[c];
}

Mat ZScoreNormalizer::inverse(const Mat& z) const {
  Mat x(z.rows(), z.cols());
  for (std::size_t r = 0; r < z.rows(); ++r)
    for (std::size_t c = 0; c < z.cols(); ++c) x(r, c) = z(r, c) * std_[c] + mean_[c];
  return x;
}

Vec ZScoreNormalizer::transform(const Vec& x) const {
  Vec z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = (x[i] - mean_[i]) / std_[i];
  return z;
}

Vec ZScoreNormalizer::inverse(const Vec& z) const {
  Vec x(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) x[i] = z[i] * std_[i] + mean_[i];
  return x;
}

Vec ZScoreNormalizer::gradient_to_raw(const Vec& dz) const {
  Vec dx(dz.size());
  for (std::size_t i = 0; i < dz.size(); ++i) dx[i] = dz[i] / std_[i];
  return dx;
}

}  // namespace maopt::nn
