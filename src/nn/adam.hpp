// Adam optimizer (Kingma & Ba) over a set of ParamRefs.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace maopt::nn {

struct AdamConfig {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.0;  ///< decoupled (AdamW-style) if nonzero
};

class Adam {
 public:
  explicit Adam(std::vector<ParamRef> params, AdamConfig config = {});

  /// Applies one update from the accumulated gradients, then zeroes them.
  void step();

  void set_learning_rate(double lr) { config_.lr = lr; }
  double learning_rate() const { return config_.lr; }

 private:
  std::vector<ParamRef> params_;
  AdamConfig config_;
  std::vector<Vec> m_, v_;
  long t_ = 0;
};

}  // namespace maopt::nn
