// Feed-forward layers with explicit forward/backward passes.
//
// The MA-Opt actor update is a deterministic-policy-gradient-style chain:
//   dL/dtheta_actor = dg/dQ * dQ/da * da/dtheta_actor,
// which requires (1) parameter gradients and (2) gradients with respect to
// the *input* of a network (`backward` returns dL/dX for exactly this).
// Batches are row-major: X is (batch x features).
//
// forward/backward return references into the layer's Workspace: buffers are
// pre-sized once and reused across the thousands of Adam steps per run, so
// the steady-state training loop never touches the allocator. The returned
// matrix stays valid until the same layer's next forward/backward call; copy
// it if you need it longer. Layers borrow (not copy) the forward input, so
// the matrix passed to forward() must stay alive — and keep its contents —
// until the matching backward-family call completes. Checked builds
// (MAOPT_CHECKED / Debug) enforce this with a borrow guard: the layer
// snapshots the input's Matrix::generation() at forward() and aborts if the
// buffer was reshaped before backward read it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "nn/workspace.hpp"

namespace maopt::nn {

using linalg::Mat;
using linalg::Vec;

/// A (value, gradient) pair owned by a layer; optimizers mutate `value` and
/// read/zero `grad`.
struct ParamRef {
  Vec* value;
  Vec* grad;
};

/// Read-only view of a layer's parameters — what const inspection paths
/// (parameter counting, serialization probes) get from params() const.
struct ConstParamRef {
  const Vec* value;
  const Vec* grad;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output; caches whatever backward() needs.
  virtual const Mat& forward(const Mat& x) = 0;

  /// Given dL/dY, accumulates parameter gradients and returns dL/dX.
  /// Must be called after forward() with a matching batch.
  virtual const Mat& backward(const Mat& dy) = 0;

  /// dL/dX WITHOUT touching parameter gradients; same contract as backward().
  /// Stateless layers share the backward() implementation.
  virtual const Mat& input_gradient(const Mat& dy) { return backward(dy); }

  /// Parameter gradients WITHOUT producing dL/dX — the cheaper backward for
  /// the bottom layer of a stack, where the input gradient is discarded.
  virtual void param_gradient(const Mat& dy) { backward(dy); }

  /// Parameter (value, grad) pairs; empty for stateless layers.
  virtual std::vector<ParamRef> params() { return {}; }

  /// Read-only parameter views for const inspection; empty for stateless
  /// layers. Overridden together with the mutable overload.
  virtual std::vector<ConstParamRef> params() const { return {}; }

  /// Deep copy (weights copied, gradients and caches reset) — used to hand
  /// each worker thread a private critic during parallel actor training.
  virtual std::unique_ptr<Layer> clone() const = 0;

  virtual std::size_t input_size() const = 0;
  virtual std::size_t output_size() const = 0;

 protected:
  // Workspace slot ids shared by all layer types.
  static constexpr std::size_t kFwdSlot = 0;
  static constexpr std::size_t kBwdSlot = 1;

  Workspace ws_;
};

/// Fully connected layer: Y = X W + 1 b^T, W is (in x out).
class Linear final : public Layer {
 public:
  /// Xavier-uniform initialization from `rng`.
  Linear(std::size_t in, std::size_t out, Rng& rng);

  const Mat& forward(const Mat& x) override;
  const Mat& backward(const Mat& dy) override;
  const Mat& input_gradient(const Mat& dy) override;
  void param_gradient(const Mat& dy) override;
  std::vector<ParamRef> params() override;
  std::vector<ConstParamRef> params() const override;
  std::unique_ptr<Layer> clone() const override;

  std::size_t input_size() const override { return in_; }
  std::size_t output_size() const override { return out_; }

  /// Row-major (in x out) weight access for tests.
  Vec& weights() { return w_; }
  Vec& bias() { return b_; }

 private:
  const Mat& input_gradient_into(const Mat& dy);
  void check_backward_input(const Mat& dy, const char* who) const;

  std::size_t in_;
  std::size_t out_;
  Vec w_, b_;
  Vec dw_, db_;
  // Borrowed view of the last forward() input, consumed by the backward
  // family. Valid because every caller keeps the input alive until after
  // backward: inside an Mlp each layer's input is the previous layer's
  // workspace buffer (stable until that layer's next forward), and the
  // bottom layer's input is the caller's batch matrix. `last_x_gen_` is the
  // borrow guard: checked builds verify the buffer was not reshaped between
  // forward() and the backward-family read.
  const Mat* last_x_ = nullptr;
  std::uint64_t last_x_gen_ = 0;
};

/// Elementwise tanh.
class Tanh final : public Layer {
 public:
  explicit Tanh(std::size_t size) : size_(size) {}
  const Mat& forward(const Mat& x) override;
  const Mat& backward(const Mat& dy) override;
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Tanh>(size_); }
  std::size_t input_size() const override { return size_; }
  std::size_t output_size() const override { return size_; }

 private:
  std::size_t size_;
};

/// Elementwise max(0, x).
class Relu final : public Layer {
 public:
  explicit Relu(std::size_t size) : size_(size) {}
  const Mat& forward(const Mat& x) override;
  const Mat& backward(const Mat& dy) override;
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Relu>(size_); }
  std::size_t input_size() const override { return size_; }
  std::size_t output_size() const override { return size_; }

 private:
  std::size_t size_;
};

}  // namespace maopt::nn
