// Feed-forward layers with explicit forward/backward passes.
//
// The MA-Opt actor update is a deterministic-policy-gradient-style chain:
//   dL/dtheta_actor = dg/dQ * dQ/da * da/dtheta_actor,
// which requires (1) parameter gradients and (2) gradients with respect to
// the *input* of a network (`backward` returns dL/dX for exactly this).
// Batches are row-major: X is (batch x features).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace maopt::nn {

using linalg::Mat;
using linalg::Vec;

/// A (value, gradient) pair owned by a layer; optimizers mutate `value` and
/// read/zero `grad`.
struct ParamRef {
  Vec* value;
  Vec* grad;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output; caches whatever backward() needs.
  virtual Mat forward(const Mat& x) = 0;

  /// Given dL/dY, accumulates parameter gradients and returns dL/dX.
  /// Must be called after forward() with a matching batch.
  virtual Mat backward(const Mat& dy) = 0;

  /// Parameter (value, grad) pairs; empty for stateless layers.
  virtual std::vector<ParamRef> params() { return {}; }

  /// Deep copy (weights copied, gradients and caches reset) — used to hand
  /// each worker thread a private critic during parallel actor training.
  virtual std::unique_ptr<Layer> clone() const = 0;

  virtual std::size_t input_size() const = 0;
  virtual std::size_t output_size() const = 0;
};

/// Fully connected layer: Y = X W + 1 b^T, W is (in x out).
class Linear final : public Layer {
 public:
  /// Xavier-uniform initialization from `rng`.
  Linear(std::size_t in, std::size_t out, Rng& rng);

  Mat forward(const Mat& x) override;
  Mat backward(const Mat& dy) override;
  std::vector<ParamRef> params() override;
  std::unique_ptr<Layer> clone() const override;

  std::size_t input_size() const override { return in_; }
  std::size_t output_size() const override { return out_; }

  /// Row-major (in x out) weight access for tests.
  Vec& weights() { return w_; }
  Vec& bias() { return b_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Vec w_, b_;
  Vec dw_, db_;
  Mat last_x_;
};

/// Elementwise tanh.
class Tanh final : public Layer {
 public:
  explicit Tanh(std::size_t size) : size_(size) {}
  Mat forward(const Mat& x) override;
  Mat backward(const Mat& dy) override;
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Tanh>(size_); }
  std::size_t input_size() const override { return size_; }
  std::size_t output_size() const override { return size_; }

 private:
  std::size_t size_;
  Mat last_y_;
};

/// Elementwise max(0, x).
class Relu final : public Layer {
 public:
  explicit Relu(std::size_t size) : size_(size) {}
  Mat forward(const Mat& x) override;
  Mat backward(const Mat& dy) override;
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Relu>(size_); }
  std::size_t input_size() const override { return size_; }
  std::size_t output_size() const override { return size_; }

 private:
  std::size_t size_;
  Mat last_x_;
};

}  // namespace maopt::nn
