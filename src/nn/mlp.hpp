// Multi-layer perceptron built from Layer objects. The paper fixes the
// architecture for both actors and the critic to two hidden layers of 100
// units (Section III-A); Mlp::make_paper_net builds exactly that.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace maopt::nn {

enum class Activation { Tanh, Relu };

class Mlp {
 public:
  /// hidden activation applied after every hidden Linear; the output layer is
  /// linear (critic) or tanh (actor, chosen by `output_tanh`).
  Mlp(std::size_t in, const std::vector<std::size_t>& hidden, std::size_t out, Rng& rng,
      Activation hidden_act = Activation::Relu, bool output_tanh = false);

  Mlp(const Mlp& other);
  Mlp& operator=(const Mlp& other);
  Mlp(Mlp&&) = default;
  Mlp& operator=(Mlp&&) = default;

  /// The paper's configuration: 2 hidden layers x 100 nodes.
  static Mlp make_paper_net(std::size_t in, std::size_t out, Rng& rng, bool output_tanh);

  /// Returned references point into per-layer Workspace buffers reused
  /// across calls: valid until this network's next forward/backward-family
  /// call; copy the result to keep it longer.
  const Mat& forward(const Mat& x);
  /// Accumulates parameter grads, returns dL/dX.
  const Mat& backward(const Mat& dy);
  /// Accumulates parameter grads only — the bottom layer skips its dL/dX
  /// GEMM. Use on training paths that discard backward()'s return value.
  void backward_params(const Mat& dy);
  /// Input gradient WITHOUT touching parameter grads (used when the critic
  /// only serves as a differentiable surrogate during actor training).
  const Mat& input_gradient(const Mat& dy);

  void zero_grad();
  std::vector<ParamRef> params();
  std::vector<ConstParamRef> params() const;

  std::size_t input_size() const { return layers_.front()->input_size(); }
  std::size_t output_size() const { return layers_.back()->output_size(); }
  std::size_t num_parameters() const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Mean-squared-error over all entries; fills dL/dY_pred into `grad`.
double mse_loss(const Mat& pred, const Mat& target, Mat* grad);

}  // namespace maopt::nn
