#include "nn/serialize.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace maopt::nn {

namespace {
constexpr const char* kMagic = "maopt-mlp";
constexpr int kVersion = 1;

std::string hex_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}
}  // namespace

void save_mlp(std::ostream& out, Mlp& net) {
  const auto params = net.params();
  out << kMagic << " " << kVersion << "\n";
  out << "params " << params.size() << "\n";
  for (const auto& p : params) {
    out << "block " << p.value->size();
    for (const double v : *p.value) out << " " << hex_double(v);
    out << "\n";
  }
}

void save_mlp(const std::string& path, Mlp& net) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_mlp: cannot open '" + path + "'");
  save_mlp(out, net);
}

void load_mlp(std::istream& in, Mlp& net) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kMagic)
    throw std::runtime_error("load_mlp: bad magic (not a maopt-mlp file)");
  if (version != kVersion)
    throw std::runtime_error("load_mlp: unsupported version " + std::to_string(version));

  std::string kw;
  std::size_t count = 0;
  if (!(in >> kw >> count) || kw != "params")
    throw std::runtime_error("load_mlp: missing params header");
  const auto params = net.params();
  if (count != params.size())
    throw std::runtime_error("load_mlp: parameter block count mismatch (file " +
                             std::to_string(count) + ", net " + std::to_string(params.size()) +
                             ")");

  for (auto& p : params) {
    std::size_t size = 0;
    if (!(in >> kw >> size) || kw != "block")
      throw std::runtime_error("load_mlp: missing block header");
    if (size != p.value->size())
      throw std::runtime_error("load_mlp: block size mismatch (file " + std::to_string(size) +
                               ", net " + std::to_string(p.value->size()) + ")");
    for (auto& v : *p.value) {
      std::string token;
      if (!(in >> token)) throw std::runtime_error("load_mlp: truncated block");
      char* end = nullptr;
      // Checkpoint floats are plain C-locale doubles, never SPICE-suffixed.
      v = std::strtod(token.c_str(), &end);  // maopt-lint: allow(number-parse)
      if (end == token.c_str()) throw std::runtime_error("load_mlp: malformed value '" + token + "'");
    }
  }
}

void load_mlp(const std::string& path, Mlp& net) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_mlp: cannot open '" + path + "'");
  load_mlp(in, net);
}

}  // namespace maopt::nn
