// Feature scaling. Designs are mapped to [-1, 1] from their box bounds
// (RangeScaler) so actor tanh outputs and critic inputs live on a common
// scale; simulation metrics are z-scored per column (ZScoreNormalizer)
// because their magnitudes span many decades (Hz vs V vs W).
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace maopt::nn {

using linalg::Mat;
using linalg::Vec;

/// Affine map between a box [lo, hi]^d and [-1, 1]^d.
class RangeScaler {
 public:
  RangeScaler() = default;
  RangeScaler(Vec lower, Vec upper);

  std::size_t dim() const { return lower_.size(); }

  Vec to_unit(const Vec& x) const;    ///< box -> [-1,1]
  Vec from_unit(const Vec& u) const;  ///< [-1,1] -> box (no clipping)
  Mat to_unit(const Mat& x) const;
  Mat from_unit(const Mat& u) const;

  /// Scales a *difference* vector (no offset): delta_box -> delta_unit.
  Vec delta_to_unit(const Vec& dx) const;
  Vec delta_from_unit(const Vec& du) const;

  const Vec& lower() const { return lower_; }
  const Vec& upper() const { return upper_; }

 private:
  Vec lower_, upper_, half_span_, center_;
};

/// Per-column standardization fitted on a sample matrix.
class ZScoreNormalizer {
 public:
  void fit(const Mat& samples);
  bool fitted() const { return !mean_.empty(); }

  Mat transform(const Mat& x) const;
  /// Allocation-free variant for hot loops: `z` is reshaped (capacity
  /// reused) and fully overwritten.
  void transform_into(const Mat& x, Mat& z) const;
  Mat inverse(const Mat& z) const;
  Vec transform(const Vec& x) const;
  Vec inverse(const Vec& z) const;
  /// Maps a gradient w.r.t. normalized values back to raw units (dz -> dx).
  Vec gradient_to_raw(const Vec& dz) const;

  const Vec& mean() const { return mean_; }
  const Vec& std() const { return std_; }

 private:
  Vec mean_, std_;
};

}  // namespace maopt::nn
