#include "nn/mlp.hpp"

#include <iterator>
#include <utility>

#include "common/check.hpp"

namespace maopt::nn {

Mlp::Mlp(std::size_t in, const std::vector<std::size_t>& hidden, std::size_t out, Rng& rng,
         Activation hidden_act, bool output_tanh) {
  std::size_t prev = in;
  for (const std::size_t h : hidden) {
    layers_.push_back(std::make_unique<Linear>(prev, h, rng));
    if (hidden_act == Activation::Tanh)
      layers_.push_back(std::make_unique<Tanh>(h));
    else
      layers_.push_back(std::make_unique<Relu>(h));
    prev = h;
  }
  layers_.push_back(std::make_unique<Linear>(prev, out, rng));
  if (output_tanh) layers_.push_back(std::make_unique<Tanh>(out));
}

Mlp::Mlp(const Mlp& other) {
  layers_.reserve(other.layers_.size());
  for (const auto& layer : other.layers_) layers_.push_back(layer->clone());
}

Mlp& Mlp::operator=(const Mlp& other) {
  if (this != &other) {
    layers_.clear();
    layers_.reserve(other.layers_.size());
    for (const auto& layer : other.layers_) layers_.push_back(layer->clone());
  }
  return *this;
}

Mlp Mlp::make_paper_net(std::size_t in, std::size_t out, Rng& rng, bool output_tanh) {
  return Mlp(in, {100, 100}, out, rng, Activation::Relu, output_tanh);
}

const Mat& Mlp::forward(const Mat& x) {
  const Mat* h = &x;
  for (auto& layer : layers_) h = &layer->forward(*h);
  return *h;
}

const Mat& Mlp::backward(const Mat& dy) {
  const Mat* g = &dy;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = &(*it)->backward(*g);
  return *g;
}

void Mlp::backward_params(const Mat& dy) {
  const Mat* g = &dy;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    if (std::next(it) == layers_.rend()) {
      (*it)->param_gradient(*g);  // bottom layer: dL/dX is never read
      return;
    }
    g = &(*it)->backward(*g);
  }
}

const Mat& Mlp::input_gradient(const Mat& dy) {
  // Each layer's input_gradient skips parameter-gradient accumulation, so no
  // grad snapshot/restore is needed (Linear also skips the dW/db GEMMs).
  const Mat* g = &dy;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = &(*it)->input_gradient(*g);
  return *g;
}

void Mlp::zero_grad() {
  for (const auto& p : params()) p.grad->assign(p.grad->size(), 0.0);
}

std::vector<ParamRef> Mlp::params() {
  std::vector<ParamRef> out;
  for (auto& layer : layers_)
    for (const auto& p : layer->params()) out.push_back(p);
  return out;
}

std::vector<ConstParamRef> Mlp::params() const {
  std::vector<ConstParamRef> out;
  for (const auto& layer : layers_)
    for (const auto& p : std::as_const(*layer).params()) out.push_back(p);
  return out;
}

std::size_t Mlp::num_parameters() const {
  std::size_t n = 0;
  for (const auto& p : params()) n += p.value->size();
  return n;
}

double mse_loss(const Mat& pred, const Mat& target, Mat* grad) {
  MAOPT_CHECK(pred.rows() == target.rows() && pred.cols() == target.cols(),
              "mse_loss: shape mismatch");
  MAOPT_CHECK(!pred.empty(), "mse_loss: empty prediction");
  const double n = static_cast<double>(pred.data().size());
  double loss = 0.0;
  if (grad) grad->ensure_shape(pred.rows(), pred.cols());  // every entry written below
  for (std::size_t i = 0; i < pred.data().size(); ++i) {
    const double d = pred.data()[i] - target.data()[i];
    loss += d * d;
    if (grad) grad->data()[i] = 2.0 * d / n;
  }
  return loss / n;
}

}  // namespace maopt::nn
