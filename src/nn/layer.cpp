#include "nn/layer.hpp"

#include <cmath>
#include <stdexcept>

namespace maopt::nn {

Linear::Linear(std::size_t in, std::size_t out, Rng& rng)
    : in_(in), out_(out), w_(in * out), b_(out, 0.0), dw_(in * out, 0.0), db_(out, 0.0) {
  const double limit = std::sqrt(6.0 / static_cast<double>(in + out));
  for (auto& w : w_) w = rng.uniform(-limit, limit);
}

Mat Linear::forward(const Mat& x) {
  if (x.cols() != in_) throw std::invalid_argument("Linear::forward: feature size mismatch");
  last_x_ = x;
  Mat y(x.rows(), out_);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto xrow = x.row(r);
    auto yrow = y.row(r);
    for (std::size_t j = 0; j < out_; ++j) yrow[j] = b_[j];
    for (std::size_t i = 0; i < in_; ++i) {
      const double xi = xrow[i];
      if (xi == 0.0) continue;
      const double* wrow = &w_[i * out_];
      for (std::size_t j = 0; j < out_; ++j) yrow[j] += xi * wrow[j];
    }
  }
  return y;
}

Mat Linear::backward(const Mat& dy) {
  if (dy.rows() != last_x_.rows() || dy.cols() != out_)
    throw std::invalid_argument("Linear::backward: shape mismatch");
  Mat dx(last_x_.rows(), in_);
  for (std::size_t r = 0; r < dy.rows(); ++r) {
    const auto dyrow = dy.row(r);
    const auto xrow = last_x_.row(r);
    auto dxrow = dx.row(r);
    for (std::size_t j = 0; j < out_; ++j) db_[j] += dyrow[j];
    for (std::size_t i = 0; i < in_; ++i) {
      const double* wrow = &w_[i * out_];
      double* dwrow = &dw_[i * out_];
      double s = 0.0;
      const double xi = xrow[i];
      for (std::size_t j = 0; j < out_; ++j) {
        s += wrow[j] * dyrow[j];
        dwrow[j] += xi * dyrow[j];
      }
      dxrow[i] = s;
    }
  }
  return dx;
}

std::vector<ParamRef> Linear::params() {
  return {{&w_, &dw_}, {&b_, &db_}};
}

std::unique_ptr<Layer> Linear::clone() const {
  // Bypass the rng-initializing constructor, then copy the weights.
  Rng dummy(0);
  auto copy = std::make_unique<Linear>(in_, out_, dummy);
  copy->w_ = w_;
  copy->b_ = b_;
  return copy;
}

Mat Tanh::forward(const Mat& x) {
  Mat y = x;
  for (auto& v : y.data()) v = std::tanh(v);
  last_y_ = y;
  return y;
}

Mat Tanh::backward(const Mat& dy) {
  Mat dx = dy;
  const auto& y = last_y_.data();
  auto& d = dx.data();
  for (std::size_t i = 0; i < d.size(); ++i) d[i] *= 1.0 - y[i] * y[i];
  return dx;
}

Mat Relu::forward(const Mat& x) {
  last_x_ = x;
  Mat y = x;
  for (auto& v : y.data()) v = v > 0.0 ? v : 0.0;
  return y;
}

Mat Relu::backward(const Mat& dy) {
  Mat dx = dy;
  const auto& x = last_x_.data();
  auto& d = dx.data();
  for (std::size_t i = 0; i < d.size(); ++i)
    if (x[i] <= 0.0) d[i] = 0.0;
  return dx;
}

}  // namespace maopt::nn
