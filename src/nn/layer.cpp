#include "nn/layer.hpp"

#include <cmath>

#include "common/check.hpp"
#include "linalg/gemm.hpp"

namespace maopt::nn {

Linear::Linear(std::size_t in, std::size_t out, Rng& rng)
    : in_(in), out_(out), w_(in * out), b_(out, 0.0), dw_(in * out, 0.0), db_(out, 0.0) {
  MAOPT_CHECK(in > 0 && out > 0, "Linear: zero-sized layer");
  const double limit = std::sqrt(6.0 / static_cast<double>(in + out));
  for (auto& w : w_) w = rng.uniform(-limit, limit);
}

const Mat& Linear::forward(const Mat& x) {
  MAOPT_CHECK(x.cols() == in_, "Linear::forward: feature size mismatch");
  last_x_ = &x;  // borrowed: callers keep the input alive until backward
  last_x_gen_ = x.generation();
  Mat& y = ws_.acquire(kFwdSlot, x.rows(), out_);
  for (std::size_t r = 0; r < y.rows(); ++r) {
    auto yrow = y.row(r);
    for (std::size_t j = 0; j < out_; ++j) yrow[j] = b_[j];
  }
  linalg::gemm_nn(x.rows(), out_, in_, x.data().data(), w_.data(), y.data().data());
  return y;
}

void Linear::check_backward_input(const Mat& dy, const char* who) const {
  MAOPT_CHECK(last_x_ != nullptr, std::string(who) + ": backward before forward");
  MAOPT_CHECK(dy.rows() == last_x_->rows() && dy.cols() == out_,
              std::string(who) + ": shape mismatch");
  // Borrow guard: the forward input must not have been reshaped (its
  // contents made unspecified) between forward() and this read.
  MAOPT_DCHECK(last_x_->generation() == last_x_gen_,
               "Linear: borrowed forward input was invalidated before backward");
}

const Mat& Linear::backward(const Mat& dy) {
  param_gradient(dy);
  return input_gradient_into(dy);
}

void Linear::param_gradient(const Mat& dy) {
  check_backward_input(dy, "Linear::backward");
  for (std::size_t r = 0; r < dy.rows(); ++r) {
    const auto dyrow = dy.row(r);
    for (std::size_t j = 0; j < out_; ++j) db_[j] += dyrow[j];
  }
  // dW += X^T dY
  linalg::gemm_tn(in_, out_, dy.rows(), last_x_->data().data(), dy.data().data(), dw_.data());
}

const Mat& Linear::input_gradient(const Mat& dy) {
  check_backward_input(dy, "Linear::input_gradient");
  return input_gradient_into(dy);
}

const Mat& Linear::input_gradient_into(const Mat& dy) {
  // dX = dY W^T
  Mat& dx = ws_.acquire(kBwdSlot, dy.rows(), in_);
  dx.fill(0.0);
  linalg::gemm_nt(dy.rows(), in_, out_, dy.data().data(), w_.data(), dx.data().data());
  return dx;
}

std::vector<ParamRef> Linear::params() {
  return {{&w_, &dw_}, {&b_, &db_}};
}

std::vector<ConstParamRef> Linear::params() const {
  return {{&w_, &dw_}, {&b_, &db_}};
}

std::unique_ptr<Layer> Linear::clone() const {
  // Bypass the rng-initializing constructor, then copy the weights.
  Rng dummy(0);
  auto copy = std::make_unique<Linear>(in_, out_, dummy);
  copy->w_ = w_;
  copy->b_ = b_;
  return copy;
}

const Mat& Tanh::forward(const Mat& x) {
  MAOPT_CHECK(x.cols() == size_, "Tanh::forward: feature size mismatch");
  Mat& y = ws_.acquire(kFwdSlot, x.rows(), x.cols());
  const auto& xv = x.data();
  auto& yv = y.data();
  for (std::size_t i = 0; i < xv.size(); ++i) yv[i] = std::tanh(xv[i]);
  return y;
}

const Mat& Tanh::backward(const Mat& dy) {
  // The cached forward output doubles as the derivative source: 1 - y^2.
  // peek() verifies the cached shape matches dy instead of re-acquiring
  // (which would mark the cached values unspecified).
  const Mat& y = ws_.peek(kFwdSlot, dy.rows(), dy.cols());
  Mat& dx = ws_.acquire(kBwdSlot, dy.rows(), dy.cols());
  const auto& yv = y.data();
  const auto& dyv = dy.data();
  auto& dv = dx.data();
  for (std::size_t i = 0; i < dv.size(); ++i) dv[i] = dyv[i] * (1.0 - yv[i] * yv[i]);
  return dx;
}

const Mat& Relu::forward(const Mat& x) {
  MAOPT_CHECK(x.cols() == size_, "Relu::forward: feature size mismatch");
  Mat& y = ws_.acquire(kFwdSlot, x.rows(), x.cols());
  const auto& xv = x.data();
  auto& yv = y.data();
  for (std::size_t i = 0; i < xv.size(); ++i) yv[i] = xv[i] > 0.0 ? xv[i] : 0.0;
  return y;
}

const Mat& Relu::backward(const Mat& dy) {
  // y > 0 <=> x > 0, so the forward output is its own activation mask.
  const Mat& y = ws_.peek(kFwdSlot, dy.rows(), dy.cols());
  Mat& dx = ws_.acquire(kBwdSlot, dy.rows(), dy.cols());
  const auto& yv = y.data();
  const auto& dyv = dy.data();
  auto& dv = dx.data();
  for (std::size_t i = 0; i < dv.size(); ++i) dv[i] = yv[i] > 0.0 ? dyv[i] : 0.0;
  return dx;
}

}  // namespace maopt::nn
