#include "nn/adam.hpp"

#include <cmath>

#include "common/thread_annotations.hpp"

namespace maopt::nn {

namespace {

// Same runtime dispatch as the GEMM kernels: the sqrt/divide chain here is
// the second-hottest loop in training, and the AVX2 clone retires it 4-wide.
// Cloning is disabled under sanitizers for the same reasons as in gemm.cpp.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && !defined(__AVX2__) && \
    !defined(MAOPT_NO_TARGET_CLONES) && !defined(__SANITIZE_ADDRESS__) &&                    \
    !defined(__SANITIZE_THREAD__)
__attribute__((target_clones("default", "arch=x86-64-v3")))
#endif
MAOPT_HOT void adam_update(double* value, double* grad, double* m, double* v, std::size_t size,
                 double beta1, double one_minus_beta1, double beta2, double one_minus_beta2,
                 double inv_bc1, double inv_bc2, double lr, double eps, double wd) {
  for (std::size_t i = 0; i < size; ++i) {
    const double g = grad[i];
    m[i] = beta1 * m[i] + one_minus_beta1 * g;
    v[i] = beta2 * v[i] + one_minus_beta2 * g * g;
    const double mhat = m[i] * inv_bc1;
    const double vhat = v[i] * inv_bc2;
    value[i] -= lr * (mhat / (std::sqrt(vhat) + eps) + wd * value[i]);
    grad[i] = 0.0;
  }
}

}  // namespace

Adam::Adam(std::vector<ParamRef> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value->size(), 0.0);
    v_.emplace_back(p.value->size(), 0.0);
  }
}

MAOPT_HOT void Adam::step() {
  ++t_;
  // Hoist the bias corrections as reciprocals: the update then costs one
  // sqrt and one division per parameter instead of one sqrt and three.
  const double inv_bc1 = 1.0 / (1.0 - std::pow(config_.beta1, static_cast<double>(t_)));
  const double inv_bc2 = 1.0 / (1.0 - std::pow(config_.beta2, static_cast<double>(t_)));
  const double beta1 = config_.beta1, one_minus_beta1 = 1.0 - config_.beta1;
  const double beta2 = config_.beta2, one_minus_beta2 = 1.0 - config_.beta2;
  const double lr = config_.lr, eps = config_.eps, wd = config_.weight_decay;
  for (std::size_t k = 0; k < params_.size(); ++k) {
    adam_update(params_[k].value->data(), params_[k].grad->data(), m_[k].data(), v_[k].data(),
                params_[k].value->size(), beta1, one_minus_beta1, beta2, one_minus_beta2,
                inv_bc1, inv_bc2, lr, eps, wd);
  }
}

}  // namespace maopt::nn
