#include "nn/adam.hpp"

#include <cmath>

namespace maopt::nn {

Adam::Adam(std::vector<ParamRef> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value->size(), 0.0);
    v_.emplace_back(p.value->size(), 0.0);
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Vec& value = *params_[k].value;
    Vec& grad = *params_[k].grad;
    Vec& m = m_[k];
    Vec& v = v_[k];
    for (std::size_t i = 0; i < value.size(); ++i) {
      m[i] = config_.beta1 * m[i] + (1.0 - config_.beta1) * grad[i];
      v[i] = config_.beta2 * v[i] + (1.0 - config_.beta2) * grad[i] * grad[i];
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      value[i] -= config_.lr * (mhat / (std::sqrt(vhat) + config_.eps) +
                                config_.weight_decay * value[i]);
      grad[i] = 0.0;
    }
  }
}

}  // namespace maopt::nn
