file(REMOVE_RECURSE
  "CMakeFiles/ldo_design.dir/ldo_design.cpp.o"
  "CMakeFiles/ldo_design.dir/ldo_design.cpp.o.d"
  "ldo_design"
  "ldo_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldo_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
