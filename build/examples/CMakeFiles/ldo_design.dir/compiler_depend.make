# Empty compiler generated dependencies file for ldo_design.
# This may be replaced when dependencies are built.
