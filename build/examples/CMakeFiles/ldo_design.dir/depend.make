# Empty dependencies file for ldo_design.
# This may be replaced when dependencies are built.
