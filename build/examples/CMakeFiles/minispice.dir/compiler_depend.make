# Empty compiler generated dependencies file for minispice.
# This may be replaced when dependencies are built.
