file(REMOVE_RECURSE
  "CMakeFiles/minispice.dir/minispice.cpp.o"
  "CMakeFiles/minispice.dir/minispice.cpp.o.d"
  "minispice"
  "minispice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minispice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
