file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_report.dir/sensitivity_report.cpp.o"
  "CMakeFiles/sensitivity_report.dir/sensitivity_report.cpp.o.d"
  "sensitivity_report"
  "sensitivity_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
