# Empty dependencies file for sensitivity_report.
# This may be replaced when dependencies are built.
