file(REMOVE_RECURSE
  "CMakeFiles/yield_analysis.dir/yield_analysis.cpp.o"
  "CMakeFiles/yield_analysis.dir/yield_analysis.cpp.o.d"
  "yield_analysis"
  "yield_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yield_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
