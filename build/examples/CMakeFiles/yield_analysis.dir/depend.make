# Empty dependencies file for yield_analysis.
# This may be replaced when dependencies are built.
