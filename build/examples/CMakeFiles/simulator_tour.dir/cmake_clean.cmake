file(REMOVE_RECURSE
  "CMakeFiles/simulator_tour.dir/simulator_tour.cpp.o"
  "CMakeFiles/simulator_tour.dir/simulator_tour.cpp.o.d"
  "simulator_tour"
  "simulator_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulator_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
