# Empty dependencies file for simulator_tour.
# This may be replaced when dependencies are built.
