# Empty compiler generated dependencies file for custom_circuit.
# This may be replaced when dependencies are built.
