file(REMOVE_RECURSE
  "CMakeFiles/custom_circuit.dir/custom_circuit.cpp.o"
  "CMakeFiles/custom_circuit.dir/custom_circuit.cpp.o.d"
  "custom_circuit"
  "custom_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
