file(REMOVE_RECURSE
  "libmaopt_circuits.a"
)
