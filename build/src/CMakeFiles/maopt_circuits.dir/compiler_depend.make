# Empty compiler generated dependencies file for maopt_circuits.
# This may be replaced when dependencies are built.
