file(REMOVE_RECURSE
  "CMakeFiles/maopt_circuits.dir/circuits/analytic_problems.cpp.o"
  "CMakeFiles/maopt_circuits.dir/circuits/analytic_problems.cpp.o.d"
  "CMakeFiles/maopt_circuits.dir/circuits/folded_cascode_ota.cpp.o"
  "CMakeFiles/maopt_circuits.dir/circuits/folded_cascode_ota.cpp.o.d"
  "CMakeFiles/maopt_circuits.dir/circuits/fom.cpp.o"
  "CMakeFiles/maopt_circuits.dir/circuits/fom.cpp.o.d"
  "CMakeFiles/maopt_circuits.dir/circuits/ldo_regulator.cpp.o"
  "CMakeFiles/maopt_circuits.dir/circuits/ldo_regulator.cpp.o.d"
  "CMakeFiles/maopt_circuits.dir/circuits/process_variation.cpp.o"
  "CMakeFiles/maopt_circuits.dir/circuits/process_variation.cpp.o.d"
  "CMakeFiles/maopt_circuits.dir/circuits/robust_problem.cpp.o"
  "CMakeFiles/maopt_circuits.dir/circuits/robust_problem.cpp.o.d"
  "CMakeFiles/maopt_circuits.dir/circuits/sensitivity.cpp.o"
  "CMakeFiles/maopt_circuits.dir/circuits/sensitivity.cpp.o.d"
  "CMakeFiles/maopt_circuits.dir/circuits/sizing_problem.cpp.o"
  "CMakeFiles/maopt_circuits.dir/circuits/sizing_problem.cpp.o.d"
  "CMakeFiles/maopt_circuits.dir/circuits/three_stage_tia.cpp.o"
  "CMakeFiles/maopt_circuits.dir/circuits/three_stage_tia.cpp.o.d"
  "CMakeFiles/maopt_circuits.dir/circuits/two_stage_ota.cpp.o"
  "CMakeFiles/maopt_circuits.dir/circuits/two_stage_ota.cpp.o.d"
  "libmaopt_circuits.a"
  "libmaopt_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maopt_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
