
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuits/analytic_problems.cpp" "src/CMakeFiles/maopt_circuits.dir/circuits/analytic_problems.cpp.o" "gcc" "src/CMakeFiles/maopt_circuits.dir/circuits/analytic_problems.cpp.o.d"
  "/root/repo/src/circuits/folded_cascode_ota.cpp" "src/CMakeFiles/maopt_circuits.dir/circuits/folded_cascode_ota.cpp.o" "gcc" "src/CMakeFiles/maopt_circuits.dir/circuits/folded_cascode_ota.cpp.o.d"
  "/root/repo/src/circuits/fom.cpp" "src/CMakeFiles/maopt_circuits.dir/circuits/fom.cpp.o" "gcc" "src/CMakeFiles/maopt_circuits.dir/circuits/fom.cpp.o.d"
  "/root/repo/src/circuits/ldo_regulator.cpp" "src/CMakeFiles/maopt_circuits.dir/circuits/ldo_regulator.cpp.o" "gcc" "src/CMakeFiles/maopt_circuits.dir/circuits/ldo_regulator.cpp.o.d"
  "/root/repo/src/circuits/process_variation.cpp" "src/CMakeFiles/maopt_circuits.dir/circuits/process_variation.cpp.o" "gcc" "src/CMakeFiles/maopt_circuits.dir/circuits/process_variation.cpp.o.d"
  "/root/repo/src/circuits/robust_problem.cpp" "src/CMakeFiles/maopt_circuits.dir/circuits/robust_problem.cpp.o" "gcc" "src/CMakeFiles/maopt_circuits.dir/circuits/robust_problem.cpp.o.d"
  "/root/repo/src/circuits/sensitivity.cpp" "src/CMakeFiles/maopt_circuits.dir/circuits/sensitivity.cpp.o" "gcc" "src/CMakeFiles/maopt_circuits.dir/circuits/sensitivity.cpp.o.d"
  "/root/repo/src/circuits/sizing_problem.cpp" "src/CMakeFiles/maopt_circuits.dir/circuits/sizing_problem.cpp.o" "gcc" "src/CMakeFiles/maopt_circuits.dir/circuits/sizing_problem.cpp.o.d"
  "/root/repo/src/circuits/three_stage_tia.cpp" "src/CMakeFiles/maopt_circuits.dir/circuits/three_stage_tia.cpp.o" "gcc" "src/CMakeFiles/maopt_circuits.dir/circuits/three_stage_tia.cpp.o.d"
  "/root/repo/src/circuits/two_stage_ota.cpp" "src/CMakeFiles/maopt_circuits.dir/circuits/two_stage_ota.cpp.o" "gcc" "src/CMakeFiles/maopt_circuits.dir/circuits/two_stage_ota.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/maopt_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
