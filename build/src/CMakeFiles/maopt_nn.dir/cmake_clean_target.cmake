file(REMOVE_RECURSE
  "libmaopt_nn.a"
)
