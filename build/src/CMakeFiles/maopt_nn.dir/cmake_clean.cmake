file(REMOVE_RECURSE
  "CMakeFiles/maopt_nn.dir/nn/adam.cpp.o"
  "CMakeFiles/maopt_nn.dir/nn/adam.cpp.o.d"
  "CMakeFiles/maopt_nn.dir/nn/layer.cpp.o"
  "CMakeFiles/maopt_nn.dir/nn/layer.cpp.o.d"
  "CMakeFiles/maopt_nn.dir/nn/mlp.cpp.o"
  "CMakeFiles/maopt_nn.dir/nn/mlp.cpp.o.d"
  "CMakeFiles/maopt_nn.dir/nn/normalizer.cpp.o"
  "CMakeFiles/maopt_nn.dir/nn/normalizer.cpp.o.d"
  "CMakeFiles/maopt_nn.dir/nn/serialize.cpp.o"
  "CMakeFiles/maopt_nn.dir/nn/serialize.cpp.o.d"
  "libmaopt_nn.a"
  "libmaopt_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maopt_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
