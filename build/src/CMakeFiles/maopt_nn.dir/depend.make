# Empty dependencies file for maopt_nn.
# This may be replaced when dependencies are built.
