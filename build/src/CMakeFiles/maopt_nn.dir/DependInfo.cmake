
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/adam.cpp" "src/CMakeFiles/maopt_nn.dir/nn/adam.cpp.o" "gcc" "src/CMakeFiles/maopt_nn.dir/nn/adam.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/CMakeFiles/maopt_nn.dir/nn/layer.cpp.o" "gcc" "src/CMakeFiles/maopt_nn.dir/nn/layer.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "src/CMakeFiles/maopt_nn.dir/nn/mlp.cpp.o" "gcc" "src/CMakeFiles/maopt_nn.dir/nn/mlp.cpp.o.d"
  "/root/repo/src/nn/normalizer.cpp" "src/CMakeFiles/maopt_nn.dir/nn/normalizer.cpp.o" "gcc" "src/CMakeFiles/maopt_nn.dir/nn/normalizer.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/CMakeFiles/maopt_nn.dir/nn/serialize.cpp.o" "gcc" "src/CMakeFiles/maopt_nn.dir/nn/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/maopt_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
