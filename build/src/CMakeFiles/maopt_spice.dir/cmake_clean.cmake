file(REMOVE_RECURSE
  "CMakeFiles/maopt_spice.dir/spice/ac_analysis.cpp.o"
  "CMakeFiles/maopt_spice.dir/spice/ac_analysis.cpp.o.d"
  "CMakeFiles/maopt_spice.dir/spice/dc_analysis.cpp.o"
  "CMakeFiles/maopt_spice.dir/spice/dc_analysis.cpp.o.d"
  "CMakeFiles/maopt_spice.dir/spice/dc_sweep.cpp.o"
  "CMakeFiles/maopt_spice.dir/spice/dc_sweep.cpp.o.d"
  "CMakeFiles/maopt_spice.dir/spice/devices.cpp.o"
  "CMakeFiles/maopt_spice.dir/spice/devices.cpp.o.d"
  "CMakeFiles/maopt_spice.dir/spice/measure.cpp.o"
  "CMakeFiles/maopt_spice.dir/spice/measure.cpp.o.d"
  "CMakeFiles/maopt_spice.dir/spice/mosfet.cpp.o"
  "CMakeFiles/maopt_spice.dir/spice/mosfet.cpp.o.d"
  "CMakeFiles/maopt_spice.dir/spice/netlist.cpp.o"
  "CMakeFiles/maopt_spice.dir/spice/netlist.cpp.o.d"
  "CMakeFiles/maopt_spice.dir/spice/noise_analysis.cpp.o"
  "CMakeFiles/maopt_spice.dir/spice/noise_analysis.cpp.o.d"
  "CMakeFiles/maopt_spice.dir/spice/op_report.cpp.o"
  "CMakeFiles/maopt_spice.dir/spice/op_report.cpp.o.d"
  "CMakeFiles/maopt_spice.dir/spice/parser.cpp.o"
  "CMakeFiles/maopt_spice.dir/spice/parser.cpp.o.d"
  "CMakeFiles/maopt_spice.dir/spice/tran_analysis.cpp.o"
  "CMakeFiles/maopt_spice.dir/spice/tran_analysis.cpp.o.d"
  "libmaopt_spice.a"
  "libmaopt_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maopt_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
