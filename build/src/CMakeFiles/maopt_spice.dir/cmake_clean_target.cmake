file(REMOVE_RECURSE
  "libmaopt_spice.a"
)
