
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/ac_analysis.cpp" "src/CMakeFiles/maopt_spice.dir/spice/ac_analysis.cpp.o" "gcc" "src/CMakeFiles/maopt_spice.dir/spice/ac_analysis.cpp.o.d"
  "/root/repo/src/spice/dc_analysis.cpp" "src/CMakeFiles/maopt_spice.dir/spice/dc_analysis.cpp.o" "gcc" "src/CMakeFiles/maopt_spice.dir/spice/dc_analysis.cpp.o.d"
  "/root/repo/src/spice/dc_sweep.cpp" "src/CMakeFiles/maopt_spice.dir/spice/dc_sweep.cpp.o" "gcc" "src/CMakeFiles/maopt_spice.dir/spice/dc_sweep.cpp.o.d"
  "/root/repo/src/spice/devices.cpp" "src/CMakeFiles/maopt_spice.dir/spice/devices.cpp.o" "gcc" "src/CMakeFiles/maopt_spice.dir/spice/devices.cpp.o.d"
  "/root/repo/src/spice/measure.cpp" "src/CMakeFiles/maopt_spice.dir/spice/measure.cpp.o" "gcc" "src/CMakeFiles/maopt_spice.dir/spice/measure.cpp.o.d"
  "/root/repo/src/spice/mosfet.cpp" "src/CMakeFiles/maopt_spice.dir/spice/mosfet.cpp.o" "gcc" "src/CMakeFiles/maopt_spice.dir/spice/mosfet.cpp.o.d"
  "/root/repo/src/spice/netlist.cpp" "src/CMakeFiles/maopt_spice.dir/spice/netlist.cpp.o" "gcc" "src/CMakeFiles/maopt_spice.dir/spice/netlist.cpp.o.d"
  "/root/repo/src/spice/noise_analysis.cpp" "src/CMakeFiles/maopt_spice.dir/spice/noise_analysis.cpp.o" "gcc" "src/CMakeFiles/maopt_spice.dir/spice/noise_analysis.cpp.o.d"
  "/root/repo/src/spice/op_report.cpp" "src/CMakeFiles/maopt_spice.dir/spice/op_report.cpp.o" "gcc" "src/CMakeFiles/maopt_spice.dir/spice/op_report.cpp.o.d"
  "/root/repo/src/spice/parser.cpp" "src/CMakeFiles/maopt_spice.dir/spice/parser.cpp.o" "gcc" "src/CMakeFiles/maopt_spice.dir/spice/parser.cpp.o.d"
  "/root/repo/src/spice/tran_analysis.cpp" "src/CMakeFiles/maopt_spice.dir/spice/tran_analysis.cpp.o" "gcc" "src/CMakeFiles/maopt_spice.dir/spice/tran_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/maopt_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
