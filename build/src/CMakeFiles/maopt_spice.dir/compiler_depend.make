# Empty compiler generated dependencies file for maopt_spice.
# This may be replaced when dependencies are built.
