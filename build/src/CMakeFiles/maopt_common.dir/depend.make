# Empty dependencies file for maopt_common.
# This may be replaced when dependencies are built.
