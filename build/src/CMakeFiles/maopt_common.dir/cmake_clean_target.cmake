file(REMOVE_RECURSE
  "libmaopt_common.a"
)
