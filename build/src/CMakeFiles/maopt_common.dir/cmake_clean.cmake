file(REMOVE_RECURSE
  "CMakeFiles/maopt_common.dir/common/cli.cpp.o"
  "CMakeFiles/maopt_common.dir/common/cli.cpp.o.d"
  "CMakeFiles/maopt_common.dir/common/log.cpp.o"
  "CMakeFiles/maopt_common.dir/common/log.cpp.o.d"
  "CMakeFiles/maopt_common.dir/common/rng.cpp.o"
  "CMakeFiles/maopt_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/maopt_common.dir/common/statistics.cpp.o"
  "CMakeFiles/maopt_common.dir/common/statistics.cpp.o.d"
  "CMakeFiles/maopt_common.dir/common/thread_pool.cpp.o"
  "CMakeFiles/maopt_common.dir/common/thread_pool.cpp.o.d"
  "libmaopt_common.a"
  "libmaopt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maopt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
