file(REMOVE_RECURSE
  "CMakeFiles/maopt_gp.dir/gp/acquisition.cpp.o"
  "CMakeFiles/maopt_gp.dir/gp/acquisition.cpp.o.d"
  "CMakeFiles/maopt_gp.dir/gp/bo_optimizer.cpp.o"
  "CMakeFiles/maopt_gp.dir/gp/bo_optimizer.cpp.o.d"
  "CMakeFiles/maopt_gp.dir/gp/gp_regression.cpp.o"
  "CMakeFiles/maopt_gp.dir/gp/gp_regression.cpp.o.d"
  "CMakeFiles/maopt_gp.dir/gp/kernel.cpp.o"
  "CMakeFiles/maopt_gp.dir/gp/kernel.cpp.o.d"
  "libmaopt_gp.a"
  "libmaopt_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maopt_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
