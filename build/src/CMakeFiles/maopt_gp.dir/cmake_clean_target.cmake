file(REMOVE_RECURSE
  "libmaopt_gp.a"
)
