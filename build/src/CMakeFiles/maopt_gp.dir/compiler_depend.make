# Empty compiler generated dependencies file for maopt_gp.
# This may be replaced when dependencies are built.
