# Empty compiler generated dependencies file for maopt_linalg.
# This may be replaced when dependencies are built.
