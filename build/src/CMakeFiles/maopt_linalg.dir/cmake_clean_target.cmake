file(REMOVE_RECURSE
  "libmaopt_linalg.a"
)
