file(REMOVE_RECURSE
  "CMakeFiles/maopt_linalg.dir/linalg/cholesky.cpp.o"
  "CMakeFiles/maopt_linalg.dir/linalg/cholesky.cpp.o.d"
  "CMakeFiles/maopt_linalg.dir/linalg/lu.cpp.o"
  "CMakeFiles/maopt_linalg.dir/linalg/lu.cpp.o.d"
  "CMakeFiles/maopt_linalg.dir/linalg/matrix.cpp.o"
  "CMakeFiles/maopt_linalg.dir/linalg/matrix.cpp.o.d"
  "libmaopt_linalg.a"
  "libmaopt_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maopt_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
