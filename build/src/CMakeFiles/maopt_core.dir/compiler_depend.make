# Empty compiler generated dependencies file for maopt_core.
# This may be replaced when dependencies are built.
