file(REMOVE_RECURSE
  "CMakeFiles/maopt_core.dir/core/actor.cpp.o"
  "CMakeFiles/maopt_core.dir/core/actor.cpp.o.d"
  "CMakeFiles/maopt_core.dir/core/critic.cpp.o"
  "CMakeFiles/maopt_core.dir/core/critic.cpp.o.d"
  "CMakeFiles/maopt_core.dir/core/de.cpp.o"
  "CMakeFiles/maopt_core.dir/core/de.cpp.o.d"
  "CMakeFiles/maopt_core.dir/core/elite_set.cpp.o"
  "CMakeFiles/maopt_core.dir/core/elite_set.cpp.o.d"
  "CMakeFiles/maopt_core.dir/core/history.cpp.o"
  "CMakeFiles/maopt_core.dir/core/history.cpp.o.d"
  "CMakeFiles/maopt_core.dir/core/history_io.cpp.o"
  "CMakeFiles/maopt_core.dir/core/history_io.cpp.o.d"
  "CMakeFiles/maopt_core.dir/core/ma_optimizer.cpp.o"
  "CMakeFiles/maopt_core.dir/core/ma_optimizer.cpp.o.d"
  "CMakeFiles/maopt_core.dir/core/near_sampling.cpp.o"
  "CMakeFiles/maopt_core.dir/core/near_sampling.cpp.o.d"
  "CMakeFiles/maopt_core.dir/core/pseudo_samples.cpp.o"
  "CMakeFiles/maopt_core.dir/core/pseudo_samples.cpp.o.d"
  "CMakeFiles/maopt_core.dir/core/pso.cpp.o"
  "CMakeFiles/maopt_core.dir/core/pso.cpp.o.d"
  "CMakeFiles/maopt_core.dir/core/random_search.cpp.o"
  "CMakeFiles/maopt_core.dir/core/random_search.cpp.o.d"
  "libmaopt_core.a"
  "libmaopt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maopt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
