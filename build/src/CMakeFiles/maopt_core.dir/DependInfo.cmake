
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/actor.cpp" "src/CMakeFiles/maopt_core.dir/core/actor.cpp.o" "gcc" "src/CMakeFiles/maopt_core.dir/core/actor.cpp.o.d"
  "/root/repo/src/core/critic.cpp" "src/CMakeFiles/maopt_core.dir/core/critic.cpp.o" "gcc" "src/CMakeFiles/maopt_core.dir/core/critic.cpp.o.d"
  "/root/repo/src/core/de.cpp" "src/CMakeFiles/maopt_core.dir/core/de.cpp.o" "gcc" "src/CMakeFiles/maopt_core.dir/core/de.cpp.o.d"
  "/root/repo/src/core/elite_set.cpp" "src/CMakeFiles/maopt_core.dir/core/elite_set.cpp.o" "gcc" "src/CMakeFiles/maopt_core.dir/core/elite_set.cpp.o.d"
  "/root/repo/src/core/history.cpp" "src/CMakeFiles/maopt_core.dir/core/history.cpp.o" "gcc" "src/CMakeFiles/maopt_core.dir/core/history.cpp.o.d"
  "/root/repo/src/core/history_io.cpp" "src/CMakeFiles/maopt_core.dir/core/history_io.cpp.o" "gcc" "src/CMakeFiles/maopt_core.dir/core/history_io.cpp.o.d"
  "/root/repo/src/core/ma_optimizer.cpp" "src/CMakeFiles/maopt_core.dir/core/ma_optimizer.cpp.o" "gcc" "src/CMakeFiles/maopt_core.dir/core/ma_optimizer.cpp.o.d"
  "/root/repo/src/core/near_sampling.cpp" "src/CMakeFiles/maopt_core.dir/core/near_sampling.cpp.o" "gcc" "src/CMakeFiles/maopt_core.dir/core/near_sampling.cpp.o.d"
  "/root/repo/src/core/pseudo_samples.cpp" "src/CMakeFiles/maopt_core.dir/core/pseudo_samples.cpp.o" "gcc" "src/CMakeFiles/maopt_core.dir/core/pseudo_samples.cpp.o.d"
  "/root/repo/src/core/pso.cpp" "src/CMakeFiles/maopt_core.dir/core/pso.cpp.o" "gcc" "src/CMakeFiles/maopt_core.dir/core/pso.cpp.o.d"
  "/root/repo/src/core/random_search.cpp" "src/CMakeFiles/maopt_core.dir/core/random_search.cpp.o" "gcc" "src/CMakeFiles/maopt_core.dir/core/random_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/maopt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
