file(REMOVE_RECURSE
  "libmaopt_core.a"
)
