file(REMOVE_RECURSE
  "CMakeFiles/ablation_actors.dir/ablation_actors.cpp.o"
  "CMakeFiles/ablation_actors.dir/ablation_actors.cpp.o.d"
  "ablation_actors"
  "ablation_actors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_actors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
