# Empty compiler generated dependencies file for ablation_actors.
# This may be replaced when dependencies are built.
