# Empty dependencies file for micro_gp.
# This may be replaced when dependencies are built.
