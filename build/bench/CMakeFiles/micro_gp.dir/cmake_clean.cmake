file(REMOVE_RECURSE
  "CMakeFiles/micro_gp.dir/micro_gp.cpp.o"
  "CMakeFiles/micro_gp.dir/micro_gp.cpp.o.d"
  "micro_gp"
  "micro_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
