file(REMOVE_RECURSE
  "CMakeFiles/micro_spice.dir/micro_spice.cpp.o"
  "CMakeFiles/micro_spice.dir/micro_spice.cpp.o.d"
  "micro_spice"
  "micro_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
