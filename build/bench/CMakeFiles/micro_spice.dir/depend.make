# Empty dependencies file for micro_spice.
# This may be replaced when dependencies are built.
