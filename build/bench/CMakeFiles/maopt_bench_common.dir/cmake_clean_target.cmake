file(REMOVE_RECURSE
  "libmaopt_bench_common.a"
)
