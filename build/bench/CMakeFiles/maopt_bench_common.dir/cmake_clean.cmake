file(REMOVE_RECURSE
  "CMakeFiles/maopt_bench_common.dir/exp_common.cpp.o"
  "CMakeFiles/maopt_bench_common.dir/exp_common.cpp.o.d"
  "libmaopt_bench_common.a"
  "libmaopt_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maopt_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
