# Empty dependencies file for maopt_bench_common.
# This may be replaced when dependencies are built.
