file(REMOVE_RECURSE
  "CMakeFiles/micro_linalg.dir/micro_linalg.cpp.o"
  "CMakeFiles/micro_linalg.dir/micro_linalg.cpp.o.d"
  "micro_linalg"
  "micro_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
