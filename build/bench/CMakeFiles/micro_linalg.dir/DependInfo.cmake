
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_linalg.cpp" "bench/CMakeFiles/micro_linalg.dir/micro_linalg.cpp.o" "gcc" "bench/CMakeFiles/micro_linalg.dir/micro_linalg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/maopt_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
