# Empty compiler generated dependencies file for micro_linalg.
# This may be replaced when dependencies are built.
