file(REMOVE_RECURSE
  "CMakeFiles/table_foldedcascode.dir/table_foldedcascode.cpp.o"
  "CMakeFiles/table_foldedcascode.dir/table_foldedcascode.cpp.o.d"
  "table_foldedcascode"
  "table_foldedcascode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_foldedcascode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
