# Empty dependencies file for table_foldedcascode.
# This may be replaced when dependencies are built.
