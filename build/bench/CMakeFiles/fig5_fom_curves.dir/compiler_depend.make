# Empty compiler generated dependencies file for fig5_fom_curves.
# This may be replaced when dependencies are built.
