file(REMOVE_RECURSE
  "CMakeFiles/fig5_fom_curves.dir/fig5_fom_curves.cpp.o"
  "CMakeFiles/fig5_fom_curves.dir/fig5_fom_curves.cpp.o.d"
  "fig5_fom_curves"
  "fig5_fom_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_fom_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
