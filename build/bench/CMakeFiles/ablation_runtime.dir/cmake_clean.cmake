file(REMOVE_RECURSE
  "CMakeFiles/ablation_runtime.dir/ablation_runtime.cpp.o"
  "CMakeFiles/ablation_runtime.dir/ablation_runtime.cpp.o.d"
  "ablation_runtime"
  "ablation_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
