# Empty dependencies file for ablation_runtime.
# This may be replaced when dependencies are built.
