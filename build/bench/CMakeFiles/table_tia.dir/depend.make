# Empty dependencies file for table_tia.
# This may be replaced when dependencies are built.
