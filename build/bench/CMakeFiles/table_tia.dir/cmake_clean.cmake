file(REMOVE_RECURSE
  "CMakeFiles/table_tia.dir/table_tia.cpp.o"
  "CMakeFiles/table_tia.dir/table_tia.cpp.o.d"
  "table_tia"
  "table_tia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_tia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
