# Empty compiler generated dependencies file for table_ldo.
# This may be replaced when dependencies are built.
