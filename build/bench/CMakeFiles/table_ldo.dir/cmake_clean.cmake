file(REMOVE_RECURSE
  "CMakeFiles/table_ldo.dir/table_ldo.cpp.o"
  "CMakeFiles/table_ldo.dir/table_ldo.cpp.o.d"
  "table_ldo"
  "table_ldo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_ldo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
