file(REMOVE_RECURSE
  "CMakeFiles/ablation_critics.dir/ablation_critics.cpp.o"
  "CMakeFiles/ablation_critics.dir/ablation_critics.cpp.o.d"
  "ablation_critics"
  "ablation_critics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_critics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
