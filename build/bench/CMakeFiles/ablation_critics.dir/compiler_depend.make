# Empty compiler generated dependencies file for ablation_critics.
# This may be replaced when dependencies are built.
