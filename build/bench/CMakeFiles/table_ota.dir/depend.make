# Empty dependencies file for table_ota.
# This may be replaced when dependencies are built.
