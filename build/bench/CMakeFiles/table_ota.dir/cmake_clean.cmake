file(REMOVE_RECURSE
  "CMakeFiles/table_ota.dir/table_ota.cpp.o"
  "CMakeFiles/table_ota.dir/table_ota.cpp.o.d"
  "table_ota"
  "table_ota.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_ota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
