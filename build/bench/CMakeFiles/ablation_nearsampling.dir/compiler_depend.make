# Empty compiler generated dependencies file for ablation_nearsampling.
# This may be replaced when dependencies are built.
