file(REMOVE_RECURSE
  "CMakeFiles/ablation_nearsampling.dir/ablation_nearsampling.cpp.o"
  "CMakeFiles/ablation_nearsampling.dir/ablation_nearsampling.cpp.o.d"
  "ablation_nearsampling"
  "ablation_nearsampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nearsampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
