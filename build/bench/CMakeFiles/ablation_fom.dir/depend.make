# Empty dependencies file for ablation_fom.
# This may be replaced when dependencies are built.
