file(REMOVE_RECURSE
  "CMakeFiles/ablation_fom.dir/ablation_fom.cpp.o"
  "CMakeFiles/ablation_fom.dir/ablation_fom.cpp.o.d"
  "ablation_fom"
  "ablation_fom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
