# Empty dependencies file for table_baselines.
# This may be replaced when dependencies are built.
