file(REMOVE_RECURSE
  "CMakeFiles/table_baselines.dir/table_baselines.cpp.o"
  "CMakeFiles/table_baselines.dir/table_baselines.cpp.o.d"
  "table_baselines"
  "table_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
