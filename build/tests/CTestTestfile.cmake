# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tests_common[1]_include.cmake")
include("/root/repo/build/tests/tests_linalg[1]_include.cmake")
include("/root/repo/build/tests/tests_nn[1]_include.cmake")
include("/root/repo/build/tests/tests_spice[1]_include.cmake")
include("/root/repo/build/tests/tests_circuits[1]_include.cmake")
include("/root/repo/build/tests/tests_gp[1]_include.cmake")
include("/root/repo/build/tests/tests_bench[1]_include.cmake")
include("/root/repo/build/tests/tests_core[1]_include.cmake")
