file(REMOVE_RECURSE
  "CMakeFiles/tests_bench.dir/bench/test_exp_common.cpp.o"
  "CMakeFiles/tests_bench.dir/bench/test_exp_common.cpp.o.d"
  "tests_bench"
  "tests_bench.pdb"
  "tests_bench[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
