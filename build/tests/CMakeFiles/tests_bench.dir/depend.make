# Empty dependencies file for tests_bench.
# This may be replaced when dependencies are built.
