file(REMOVE_RECURSE
  "CMakeFiles/tests_common.dir/common/test_cli.cpp.o"
  "CMakeFiles/tests_common.dir/common/test_cli.cpp.o.d"
  "CMakeFiles/tests_common.dir/common/test_log.cpp.o"
  "CMakeFiles/tests_common.dir/common/test_log.cpp.o.d"
  "CMakeFiles/tests_common.dir/common/test_rng.cpp.o"
  "CMakeFiles/tests_common.dir/common/test_rng.cpp.o.d"
  "CMakeFiles/tests_common.dir/common/test_statistics.cpp.o"
  "CMakeFiles/tests_common.dir/common/test_statistics.cpp.o.d"
  "CMakeFiles/tests_common.dir/common/test_thread_pool.cpp.o"
  "CMakeFiles/tests_common.dir/common/test_thread_pool.cpp.o.d"
  "tests_common"
  "tests_common.pdb"
  "tests_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
