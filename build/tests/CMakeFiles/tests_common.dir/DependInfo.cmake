
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_cli.cpp" "tests/CMakeFiles/tests_common.dir/common/test_cli.cpp.o" "gcc" "tests/CMakeFiles/tests_common.dir/common/test_cli.cpp.o.d"
  "/root/repo/tests/common/test_log.cpp" "tests/CMakeFiles/tests_common.dir/common/test_log.cpp.o" "gcc" "tests/CMakeFiles/tests_common.dir/common/test_log.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/CMakeFiles/tests_common.dir/common/test_rng.cpp.o" "gcc" "tests/CMakeFiles/tests_common.dir/common/test_rng.cpp.o.d"
  "/root/repo/tests/common/test_statistics.cpp" "tests/CMakeFiles/tests_common.dir/common/test_statistics.cpp.o" "gcc" "tests/CMakeFiles/tests_common.dir/common/test_statistics.cpp.o.d"
  "/root/repo/tests/common/test_thread_pool.cpp" "tests/CMakeFiles/tests_common.dir/common/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/tests_common.dir/common/test_thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/maopt_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
