# Empty compiler generated dependencies file for tests_common.
# This may be replaced when dependencies are built.
