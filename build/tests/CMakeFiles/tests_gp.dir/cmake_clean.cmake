file(REMOVE_RECURSE
  "CMakeFiles/tests_gp.dir/gp/test_acquisition.cpp.o"
  "CMakeFiles/tests_gp.dir/gp/test_acquisition.cpp.o.d"
  "CMakeFiles/tests_gp.dir/gp/test_bo.cpp.o"
  "CMakeFiles/tests_gp.dir/gp/test_bo.cpp.o.d"
  "CMakeFiles/tests_gp.dir/gp/test_gp_regression.cpp.o"
  "CMakeFiles/tests_gp.dir/gp/test_gp_regression.cpp.o.d"
  "CMakeFiles/tests_gp.dir/gp/test_kernel.cpp.o"
  "CMakeFiles/tests_gp.dir/gp/test_kernel.cpp.o.d"
  "CMakeFiles/tests_gp.dir/gp/test_matern.cpp.o"
  "CMakeFiles/tests_gp.dir/gp/test_matern.cpp.o.d"
  "tests_gp"
  "tests_gp.pdb"
  "tests_gp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
