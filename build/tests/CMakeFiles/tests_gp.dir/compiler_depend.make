# Empty compiler generated dependencies file for tests_gp.
# This may be replaced when dependencies are built.
