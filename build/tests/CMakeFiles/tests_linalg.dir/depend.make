# Empty dependencies file for tests_linalg.
# This may be replaced when dependencies are built.
