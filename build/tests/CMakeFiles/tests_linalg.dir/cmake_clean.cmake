file(REMOVE_RECURSE
  "CMakeFiles/tests_linalg.dir/linalg/test_cholesky.cpp.o"
  "CMakeFiles/tests_linalg.dir/linalg/test_cholesky.cpp.o.d"
  "CMakeFiles/tests_linalg.dir/linalg/test_lu.cpp.o"
  "CMakeFiles/tests_linalg.dir/linalg/test_lu.cpp.o.d"
  "CMakeFiles/tests_linalg.dir/linalg/test_matrix.cpp.o"
  "CMakeFiles/tests_linalg.dir/linalg/test_matrix.cpp.o.d"
  "tests_linalg"
  "tests_linalg.pdb"
  "tests_linalg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
