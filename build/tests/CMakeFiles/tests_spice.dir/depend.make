# Empty dependencies file for tests_spice.
# This may be replaced when dependencies are built.
