
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/spice/test_ac.cpp" "tests/CMakeFiles/tests_spice.dir/spice/test_ac.cpp.o" "gcc" "tests/CMakeFiles/tests_spice.dir/spice/test_ac.cpp.o.d"
  "/root/repo/tests/spice/test_ac_extra.cpp" "tests/CMakeFiles/tests_spice.dir/spice/test_ac_extra.cpp.o" "gcc" "tests/CMakeFiles/tests_spice.dir/spice/test_ac_extra.cpp.o.d"
  "/root/repo/tests/spice/test_body_effect.cpp" "tests/CMakeFiles/tests_spice.dir/spice/test_body_effect.cpp.o" "gcc" "tests/CMakeFiles/tests_spice.dir/spice/test_body_effect.cpp.o.d"
  "/root/repo/tests/spice/test_dc.cpp" "tests/CMakeFiles/tests_spice.dir/spice/test_dc.cpp.o" "gcc" "tests/CMakeFiles/tests_spice.dir/spice/test_dc.cpp.o.d"
  "/root/repo/tests/spice/test_loads.cpp" "tests/CMakeFiles/tests_spice.dir/spice/test_loads.cpp.o" "gcc" "tests/CMakeFiles/tests_spice.dir/spice/test_loads.cpp.o.d"
  "/root/repo/tests/spice/test_measure.cpp" "tests/CMakeFiles/tests_spice.dir/spice/test_measure.cpp.o" "gcc" "tests/CMakeFiles/tests_spice.dir/spice/test_measure.cpp.o.d"
  "/root/repo/tests/spice/test_measure_extra.cpp" "tests/CMakeFiles/tests_spice.dir/spice/test_measure_extra.cpp.o" "gcc" "tests/CMakeFiles/tests_spice.dir/spice/test_measure_extra.cpp.o.d"
  "/root/repo/tests/spice/test_mosfet.cpp" "tests/CMakeFiles/tests_spice.dir/spice/test_mosfet.cpp.o" "gcc" "tests/CMakeFiles/tests_spice.dir/spice/test_mosfet.cpp.o.d"
  "/root/repo/tests/spice/test_mosfet_properties.cpp" "tests/CMakeFiles/tests_spice.dir/spice/test_mosfet_properties.cpp.o" "gcc" "tests/CMakeFiles/tests_spice.dir/spice/test_mosfet_properties.cpp.o.d"
  "/root/repo/tests/spice/test_netlist.cpp" "tests/CMakeFiles/tests_spice.dir/spice/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/tests_spice.dir/spice/test_netlist.cpp.o.d"
  "/root/repo/tests/spice/test_noise.cpp" "tests/CMakeFiles/tests_spice.dir/spice/test_noise.cpp.o" "gcc" "tests/CMakeFiles/tests_spice.dir/spice/test_noise.cpp.o.d"
  "/root/repo/tests/spice/test_op_report.cpp" "tests/CMakeFiles/tests_spice.dir/spice/test_op_report.cpp.o" "gcc" "tests/CMakeFiles/tests_spice.dir/spice/test_op_report.cpp.o.d"
  "/root/repo/tests/spice/test_parser.cpp" "tests/CMakeFiles/tests_spice.dir/spice/test_parser.cpp.o" "gcc" "tests/CMakeFiles/tests_spice.dir/spice/test_parser.cpp.o.d"
  "/root/repo/tests/spice/test_subthreshold.cpp" "tests/CMakeFiles/tests_spice.dir/spice/test_subthreshold.cpp.o" "gcc" "tests/CMakeFiles/tests_spice.dir/spice/test_subthreshold.cpp.o.d"
  "/root/repo/tests/spice/test_tran.cpp" "tests/CMakeFiles/tests_spice.dir/spice/test_tran.cpp.o" "gcc" "tests/CMakeFiles/tests_spice.dir/spice/test_tran.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/maopt_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
