# Empty dependencies file for tests_circuits.
# This may be replaced when dependencies are built.
