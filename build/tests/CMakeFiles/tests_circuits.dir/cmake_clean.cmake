file(REMOVE_RECURSE
  "CMakeFiles/tests_circuits.dir/circuits/test_analytic.cpp.o"
  "CMakeFiles/tests_circuits.dir/circuits/test_analytic.cpp.o.d"
  "CMakeFiles/tests_circuits.dir/circuits/test_corners.cpp.o"
  "CMakeFiles/tests_circuits.dir/circuits/test_corners.cpp.o.d"
  "CMakeFiles/tests_circuits.dir/circuits/test_folded_cascode.cpp.o"
  "CMakeFiles/tests_circuits.dir/circuits/test_folded_cascode.cpp.o.d"
  "CMakeFiles/tests_circuits.dir/circuits/test_fom.cpp.o"
  "CMakeFiles/tests_circuits.dir/circuits/test_fom.cpp.o.d"
  "CMakeFiles/tests_circuits.dir/circuits/test_ldo.cpp.o"
  "CMakeFiles/tests_circuits.dir/circuits/test_ldo.cpp.o.d"
  "CMakeFiles/tests_circuits.dir/circuits/test_ota.cpp.o"
  "CMakeFiles/tests_circuits.dir/circuits/test_ota.cpp.o.d"
  "CMakeFiles/tests_circuits.dir/circuits/test_process_variation.cpp.o"
  "CMakeFiles/tests_circuits.dir/circuits/test_process_variation.cpp.o.d"
  "CMakeFiles/tests_circuits.dir/circuits/test_robust_problem.cpp.o"
  "CMakeFiles/tests_circuits.dir/circuits/test_robust_problem.cpp.o.d"
  "CMakeFiles/tests_circuits.dir/circuits/test_sensitivity.cpp.o"
  "CMakeFiles/tests_circuits.dir/circuits/test_sensitivity.cpp.o.d"
  "CMakeFiles/tests_circuits.dir/circuits/test_sizing_problem.cpp.o"
  "CMakeFiles/tests_circuits.dir/circuits/test_sizing_problem.cpp.o.d"
  "CMakeFiles/tests_circuits.dir/circuits/test_tia.cpp.o"
  "CMakeFiles/tests_circuits.dir/circuits/test_tia.cpp.o.d"
  "tests_circuits"
  "tests_circuits.pdb"
  "tests_circuits[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
