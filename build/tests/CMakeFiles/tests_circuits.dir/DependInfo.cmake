
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/circuits/test_analytic.cpp" "tests/CMakeFiles/tests_circuits.dir/circuits/test_analytic.cpp.o" "gcc" "tests/CMakeFiles/tests_circuits.dir/circuits/test_analytic.cpp.o.d"
  "/root/repo/tests/circuits/test_corners.cpp" "tests/CMakeFiles/tests_circuits.dir/circuits/test_corners.cpp.o" "gcc" "tests/CMakeFiles/tests_circuits.dir/circuits/test_corners.cpp.o.d"
  "/root/repo/tests/circuits/test_folded_cascode.cpp" "tests/CMakeFiles/tests_circuits.dir/circuits/test_folded_cascode.cpp.o" "gcc" "tests/CMakeFiles/tests_circuits.dir/circuits/test_folded_cascode.cpp.o.d"
  "/root/repo/tests/circuits/test_fom.cpp" "tests/CMakeFiles/tests_circuits.dir/circuits/test_fom.cpp.o" "gcc" "tests/CMakeFiles/tests_circuits.dir/circuits/test_fom.cpp.o.d"
  "/root/repo/tests/circuits/test_ldo.cpp" "tests/CMakeFiles/tests_circuits.dir/circuits/test_ldo.cpp.o" "gcc" "tests/CMakeFiles/tests_circuits.dir/circuits/test_ldo.cpp.o.d"
  "/root/repo/tests/circuits/test_ota.cpp" "tests/CMakeFiles/tests_circuits.dir/circuits/test_ota.cpp.o" "gcc" "tests/CMakeFiles/tests_circuits.dir/circuits/test_ota.cpp.o.d"
  "/root/repo/tests/circuits/test_process_variation.cpp" "tests/CMakeFiles/tests_circuits.dir/circuits/test_process_variation.cpp.o" "gcc" "tests/CMakeFiles/tests_circuits.dir/circuits/test_process_variation.cpp.o.d"
  "/root/repo/tests/circuits/test_robust_problem.cpp" "tests/CMakeFiles/tests_circuits.dir/circuits/test_robust_problem.cpp.o" "gcc" "tests/CMakeFiles/tests_circuits.dir/circuits/test_robust_problem.cpp.o.d"
  "/root/repo/tests/circuits/test_sensitivity.cpp" "tests/CMakeFiles/tests_circuits.dir/circuits/test_sensitivity.cpp.o" "gcc" "tests/CMakeFiles/tests_circuits.dir/circuits/test_sensitivity.cpp.o.d"
  "/root/repo/tests/circuits/test_sizing_problem.cpp" "tests/CMakeFiles/tests_circuits.dir/circuits/test_sizing_problem.cpp.o" "gcc" "tests/CMakeFiles/tests_circuits.dir/circuits/test_sizing_problem.cpp.o.d"
  "/root/repo/tests/circuits/test_tia.cpp" "tests/CMakeFiles/tests_circuits.dir/circuits/test_tia.cpp.o" "gcc" "tests/CMakeFiles/tests_circuits.dir/circuits/test_tia.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/maopt_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
