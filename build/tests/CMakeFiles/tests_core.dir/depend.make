# Empty dependencies file for tests_core.
# This may be replaced when dependencies are built.
