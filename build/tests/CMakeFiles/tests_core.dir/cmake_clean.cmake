file(REMOVE_RECURSE
  "CMakeFiles/tests_core.dir/core/test_actor.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_actor.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_critic.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_critic.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_critic_ensemble.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_critic_ensemble.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_elite_set.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_elite_set.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_history.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_history.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_history_io.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_history_io.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_integration.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_integration.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_ma_optimizer.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_ma_optimizer.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_near_sampling.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_near_sampling.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_population_baselines.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_population_baselines.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_pseudo_samples.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_pseudo_samples.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_random_search.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_random_search.cpp.o.d"
  "tests_core"
  "tests_core.pdb"
  "tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
