
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_actor.cpp" "tests/CMakeFiles/tests_core.dir/core/test_actor.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_actor.cpp.o.d"
  "/root/repo/tests/core/test_critic.cpp" "tests/CMakeFiles/tests_core.dir/core/test_critic.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_critic.cpp.o.d"
  "/root/repo/tests/core/test_critic_ensemble.cpp" "tests/CMakeFiles/tests_core.dir/core/test_critic_ensemble.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_critic_ensemble.cpp.o.d"
  "/root/repo/tests/core/test_elite_set.cpp" "tests/CMakeFiles/tests_core.dir/core/test_elite_set.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_elite_set.cpp.o.d"
  "/root/repo/tests/core/test_history.cpp" "tests/CMakeFiles/tests_core.dir/core/test_history.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_history.cpp.o.d"
  "/root/repo/tests/core/test_history_io.cpp" "tests/CMakeFiles/tests_core.dir/core/test_history_io.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_history_io.cpp.o.d"
  "/root/repo/tests/core/test_integration.cpp" "tests/CMakeFiles/tests_core.dir/core/test_integration.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_integration.cpp.o.d"
  "/root/repo/tests/core/test_ma_optimizer.cpp" "tests/CMakeFiles/tests_core.dir/core/test_ma_optimizer.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_ma_optimizer.cpp.o.d"
  "/root/repo/tests/core/test_near_sampling.cpp" "tests/CMakeFiles/tests_core.dir/core/test_near_sampling.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_near_sampling.cpp.o.d"
  "/root/repo/tests/core/test_population_baselines.cpp" "tests/CMakeFiles/tests_core.dir/core/test_population_baselines.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_population_baselines.cpp.o.d"
  "/root/repo/tests/core/test_pseudo_samples.cpp" "tests/CMakeFiles/tests_core.dir/core/test_pseudo_samples.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_pseudo_samples.cpp.o.d"
  "/root/repo/tests/core/test_random_search.cpp" "tests/CMakeFiles/tests_core.dir/core/test_random_search.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/test_random_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/maopt_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
