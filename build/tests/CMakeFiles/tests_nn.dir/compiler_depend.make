# Empty compiler generated dependencies file for tests_nn.
# This may be replaced when dependencies are built.
