
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/test_adam.cpp" "tests/CMakeFiles/tests_nn.dir/nn/test_adam.cpp.o" "gcc" "tests/CMakeFiles/tests_nn.dir/nn/test_adam.cpp.o.d"
  "/root/repo/tests/nn/test_layers.cpp" "tests/CMakeFiles/tests_nn.dir/nn/test_layers.cpp.o" "gcc" "tests/CMakeFiles/tests_nn.dir/nn/test_layers.cpp.o.d"
  "/root/repo/tests/nn/test_mlp.cpp" "tests/CMakeFiles/tests_nn.dir/nn/test_mlp.cpp.o" "gcc" "tests/CMakeFiles/tests_nn.dir/nn/test_mlp.cpp.o.d"
  "/root/repo/tests/nn/test_normalizer.cpp" "tests/CMakeFiles/tests_nn.dir/nn/test_normalizer.cpp.o" "gcc" "tests/CMakeFiles/tests_nn.dir/nn/test_normalizer.cpp.o.d"
  "/root/repo/tests/nn/test_serialize.cpp" "tests/CMakeFiles/tests_nn.dir/nn/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/tests_nn.dir/nn/test_serialize.cpp.o.d"
  "/root/repo/tests/nn/test_training_properties.cpp" "tests/CMakeFiles/tests_nn.dir/nn/test_training_properties.cpp.o" "gcc" "tests/CMakeFiles/tests_nn.dir/nn/test_training_properties.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/maopt_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
