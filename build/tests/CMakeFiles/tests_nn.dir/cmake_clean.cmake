file(REMOVE_RECURSE
  "CMakeFiles/tests_nn.dir/nn/test_adam.cpp.o"
  "CMakeFiles/tests_nn.dir/nn/test_adam.cpp.o.d"
  "CMakeFiles/tests_nn.dir/nn/test_layers.cpp.o"
  "CMakeFiles/tests_nn.dir/nn/test_layers.cpp.o.d"
  "CMakeFiles/tests_nn.dir/nn/test_mlp.cpp.o"
  "CMakeFiles/tests_nn.dir/nn/test_mlp.cpp.o.d"
  "CMakeFiles/tests_nn.dir/nn/test_normalizer.cpp.o"
  "CMakeFiles/tests_nn.dir/nn/test_normalizer.cpp.o.d"
  "CMakeFiles/tests_nn.dir/nn/test_serialize.cpp.o"
  "CMakeFiles/tests_nn.dir/nn/test_serialize.cpp.o.d"
  "CMakeFiles/tests_nn.dir/nn/test_training_properties.cpp.o"
  "CMakeFiles/tests_nn.dir/nn/test_training_properties.cpp.o.d"
  "tests_nn"
  "tests_nn.pdb"
  "tests_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
