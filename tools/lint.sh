#!/usr/bin/env bash
# Unified static-analysis entry point: clang-format (dry-run), clang-tidy,
# and the repo-invariant linter tools/maopt_lint.py under one command.
#
# Usage:
#   tools/lint.sh                     # all stages over the default trees
#   tools/lint.sh src/nn              # restrict to a subtree
#   tools/lint.sh src examples        # several trees
#   tools/lint.sh --fix [path...]     # clang-format -i + clang-tidy fixits
#   tools/lint.sh --only tidy ...     # one stage: format | tidy | maopt
#
# Stage availability degrades gracefully: clang-format / clang-tidy stages
# print a SKIPPED notice when the tool is not installed (maopt_lint is
# pure Python and always runs), and the script's exit code reflects only
# the stages that actually ran — safe to call unconditionally from hooks
# and CI shims. clang-tidy needs a compile_commands.json; one is configured
# into build-tidy/ on first run (no compilation required).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

find_tool() {
  for candidate in "$@"; do
    if command -v "${candidate}" > /dev/null 2>&1; then
      echo "${candidate}"
      return 0
    fi
  done
  return 1
}

fix=0
only=""
while [[ "${1:-}" == --* ]]; do
  case "$1" in
    --fix) fix=1; shift ;;
    --only) only="${2:?--only needs a stage: format|tidy|maopt}"; shift 2 ;;
    *) echo "lint.sh: unknown option '$1'" >&2; exit 2 ;;
  esac
done
targets=("$@")
if [[ "${#targets[@]}" -eq 0 ]]; then
  targets=(src)
fi

run_stage() {  # run_stage <name> -> 0 when enabled
  [[ -z "${only}" || "${only}" == "$1" ]]
}

mapfile -t cpp_files < <(find "${targets[@]}" -name '*.cpp' -o -name '*.hpp' | sort)
if [[ "${#cpp_files[@]}" -eq 0 ]]; then
  echo "lint.sh: no C++ files under '${targets[*]}'" >&2
  exit 1
fi

status=0

# --- stage: clang-format ----------------------------------------------------
if run_stage format; then
  if fmt="$(find_tool clang-format clang-format-19 clang-format-18 clang-format-17 clang-format-16 clang-format-15)"; then
    if [[ ${fix} -eq 1 ]]; then
      echo "lint.sh[format]: ${fmt} -i over ${#cpp_files[@]} files"
      "${fmt}" -i "${cpp_files[@]}"
    else
      echo "lint.sh[format]: ${fmt} --dry-run over ${#cpp_files[@]} files"
      if ! "${fmt}" --dry-run --Werror "${cpp_files[@]}"; then
        echo "lint.sh[format]: FAILED — run tools/lint.sh --fix" >&2
        status=1
      fi
    fi
  else
    echo "lint.sh[format]: SKIPPED — clang-format not installed."
  fi
fi

# --- stage: clang-tidy ------------------------------------------------------
if run_stage tidy; then
  if tidy="$(find_tool clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15)"; then
    build_dir="${repo_root}/build-tidy"
    if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
      echo "lint.sh[tidy]: configuring ${build_dir} for compile_commands.json"
      cmake -B "${build_dir}" -S "${repo_root}" > /dev/null
    fi
    fix_args=()
    if [[ ${fix} -eq 1 ]]; then
      fix_args=(--fix --fix-errors)
    fi
    mapfile -t tidy_files < <(printf '%s\n' "${cpp_files[@]}" | grep '\.cpp$' || true)
    echo "lint.sh[tidy]: ${tidy} over ${#tidy_files[@]} files (config .clang-tidy, warnings are errors)"
    if ! "${tidy}" -p "${build_dir}" --quiet "${fix_args[@]}" "${tidy_files[@]}"; then
      echo "lint.sh[tidy]: FAILED — fix the warnings above (or run tools/lint.sh --fix)" >&2
      status=1
    fi
  else
    echo "lint.sh[tidy]: SKIPPED — clang-tidy not installed (apt install clang-tidy)."
  fi
fi

# --- stage: maopt_lint ------------------------------------------------------
if run_stage maopt; then
  maopt_args=()
  # Feed parse args to the optional libclang frontend when a build dir has
  # already exported them; the lexical frontend ignores the flag's absence.
  for cc in build/compile_commands.json build-tidy/compile_commands.json; do
    if [[ -f "${cc}" ]]; then
      maopt_args=(--compile-commands "${cc}")
      break
    fi
  done
  echo "lint.sh[maopt]: tools/maopt_lint.py ${maopt_args[*]:-}"
  if ! python3 tools/maopt_lint.py "${maopt_args[@]}"; then
    echo "lint.sh[maopt]: FAILED — repo invariants violated (see findings above)" >&2
    status=1
  fi
fi

if [[ ${status} -eq 0 ]]; then
  echo "lint.sh: OK"
else
  echo "lint.sh: FAILED" >&2
fi
exit ${status}
