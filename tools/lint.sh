#!/usr/bin/env bash
# clang-tidy gate over src/ using the committed .clang-tidy config.
#
# Usage:
#   tools/lint.sh                     # lint every .cpp under src/
#   tools/lint.sh src/nn              # lint a subtree
#   tools/lint.sh src examples        # lint several trees
#   tools/lint.sh --fix [path...]     # apply clang-tidy fixits
#
# Needs a compile_commands.json; one is configured into build-tidy/ on first
# run (any generator, no compilation required). Exits 0 with a SKIPPED
# notice when clang-tidy is not installed (the sanitizer matrix still runs),
# so the script is safe to call unconditionally from hooks and CI shims.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

find_tool() {
  for candidate in "$@"; do
    if command -v "${candidate}" > /dev/null 2>&1; then
      echo "${candidate}"
      return 0
    fi
  done
  return 1
}

tidy="$(find_tool clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15)" || {
  echo "lint.sh: SKIPPED — clang-tidy not installed (apt install clang-tidy)."
  exit 0
}

fix_args=()
if [[ "${1:-}" == "--fix" ]]; then
  fix_args=(--fix --fix-errors)
  shift
fi
targets=("$@")
if [[ "${#targets[@]}" -eq 0 ]]; then
  targets=(src)
fi

build_dir="${repo_root}/build-tidy"
if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "lint.sh: configuring ${build_dir} for compile_commands.json"
  cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

mapfile -t files < <(find "${targets[@]}" -name '*.cpp' | sort)
if [[ "${#files[@]}" -eq 0 ]]; then
  echo "lint.sh: no .cpp files under '${targets[*]}'" >&2
  exit 1
fi

echo "lint.sh: ${tidy} over ${#files[@]} files (config .clang-tidy, warnings are errors)"
status=0
"${tidy}" -p "${build_dir}" --quiet "${fix_args[@]}" "${files[@]}" || status=$?
if [[ ${status} -eq 0 ]]; then
  echo "lint.sh: OK — zero warnings"
else
  echo "lint.sh: FAILED — fix the warnings above (or run tools/lint.sh --fix)" >&2
fi
exit ${status}
