#!/usr/bin/env python3
"""maopt_lint — repo-specific static analysis for the MA-Opt tree.

Enforces invariants that generic clang-tidy checks cannot express:

  bare-assert          no `assert(...)` outside tests/ — contracts go through
                       MAOPT_CHECK (always-on, throwing) or MAOPT_DCHECK
                       (debug/MAOPT_CHECKED, aborting). A bare assert
                       vanishes in NDEBUG builds, silently deleting the
                       contract the release binary relies on.
  nondeterminism       no wall-clock / entropy sources (std::random_device,
                       rand, srand, time(nullptr), *_clock::now) in the
                       deterministic core (src/core, src/eval, src/spice,
                       src/nn, src/linalg, src/gp, src/circuits). The
                       replayable RNG schedule and bit-identical
                       checkpoint/resume depend on every decision deriving
                       from (seed, x). Telemetry timing goes through
                       maopt::Stopwatch (src/common) and obs/, which are
                       exempt by scope.
  hot-alloc            no heap allocation inside functions marked MAOPT_HOT
                       (Newton loop, Adam step, GEMM/LU kernels): `new`,
                       malloc-family, make_unique/make_shared, and growing
                       container calls (push_back, emplace_back, resize,
                       reserve, ...). PRs 1 and 6 made these loops
                       allocation-free; this keeps them that way.
  raw-mutex            no raw std::mutex / lock_guard / unique_lock /
                       condition_variable in src/ — locking goes through the
                       annotated maopt::Mutex / MutexLock / CondVar
                       (src/common/thread_annotations.hpp) so Clang
                       -Wthread-safety sees every acquisition.
  number-parse         no hand-rolled string->double parsing (stod/strtod/
                       atof/sscanf family) outside src/deck/ and
                       src/spice/parser.cpp — user-facing numbers must go
                       through spice::parse_spice_value so "2meg"/"100f"
                       engineering suffixes mean the same thing everywhere.
  observer-bracketing  RunStarted/RunFinished bracket events are emitted
                       only by the Optimizer template method
                       (src/core/optimizer.cpp) and always as a pair; phase
                       spans are recorded via the RAII obs::ScopedSpan, not
                       raw SpanCollector::add calls. Unbalanced brackets
                       break every downstream consumer of the JSONL stream
                       (tools/check_telemetry.py validates streams at
                       runtime; this catches the bug at review time).

Suppression: append `// maopt-lint: allow(<check>)` to a line to waive one
finding there, with the justification in the same comment.

Frontend: `--frontend libclang` parses each file with clang.cindex when the
Python bindings are importable (args taken from --compile-commands) and
resolves MAOPT_HOT function extents from the AST; `--frontend lexical` uses
the built-in comment/string-aware tokenizer; the default `auto` picks
libclang when available and falls back to lexical with a notice — the
checks themselves are frontend-independent, so a toolchain-less container
still enforces every invariant.

Usage:
  tools/maopt_lint.py                         # lint the shipped tree
  tools/maopt_lint.py src/eval bench          # explicit roots
  tools/maopt_lint.py --compile-commands build/compile_commands.json
  tools/maopt_lint.py --self-test             # run the tests/lint fixtures
  tools/maopt_lint.py --list-checks

Exit codes: 0 clean, 1 findings, 2 usage/internal error.

Adding a check: write a function taking a SourceFile and yielding Finding,
decorate it with @register_check("name", "what it enforces"), and drop
`<name>_bad.cpp` / `<name>_good.cpp` fixtures into tests/lint/fixtures/ —
--self-test (wired into ctest as LintSelfTest) fails until the bad fixture
is flagged and the good one is clean.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Directories scanned in tree mode, relative to the repo root.
DEFAULT_ROOTS = ["src", "bench", "examples"]
FIXTURE_DIR = os.path.join("tests", "lint", "fixtures")
CXX_EXTENSIONS = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

SUPPRESS_RE = re.compile(r"//\s*maopt-lint:\s*allow\(([a-z0-9_,\- ]+)\)")


# ---------------------------------------------------------------------------
# Source model
# ---------------------------------------------------------------------------


def mask_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving offsets.

    Every masked character becomes a space (newlines survive), so regex
    matches on the result map 1:1 onto the original text and line numbers.
    Handles //, /* */, "...", '...', and raw strings R"delim(...)delim".
    """
    out = list(text)
    i, n = 0, len(text)

    def blank(a: int, b: int) -> None:
        for j in range(a, b):
            if out[j] != "\n":
                out[j] = " "

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            end = text.find("\n", i)
            end = n if end == -1 else end
            blank(i, end)
            i = end
        elif c == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            blank(i, end)
            i = end
        elif c == "R" and text[i : i + 2] == 'R"':
            m = re.match(r'R"([^()\s\\]{0,16})\(', text[i:])
            if m:
                closer = ")" + m.group(1) + '"'
                end = text.find(closer, i + m.end())
                end = n if end == -1 else end + len(closer)
                blank(i + 2, end)
                i = end
            else:
                i += 1
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            end = min(j + 1, n)
            blank(i + 1, end - 1)
            i = end
        else:
            i += 1
    return "".join(out)


@dataclass
class SourceFile:
    path: str  # repo-relative, forward slashes
    text: str  # raw contents
    masked: str  # comments/strings blanked, offsets preserved

    _line_starts: Optional[List[int]] = None
    _suppressed: Optional[dict] = None

    @classmethod
    def load(cls, abs_path: str, rel_path: str) -> "SourceFile":
        with open(abs_path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
        return cls(path=rel_path.replace(os.sep, "/"), text=text,
                   masked=mask_comments_and_strings(text))

    def line_of(self, offset: int) -> int:
        if self._line_starts is None:
            self._line_starts = [0] + [m.end() for m in re.finditer("\n", self.text)]
        import bisect

        return bisect.bisect_right(self._line_starts, offset)

    def suppressed(self, check: str, line: int) -> bool:
        if self._suppressed is None:
            table: dict = {}
            for idx, raw in enumerate(self.text.splitlines(), start=1):
                m = SUPPRESS_RE.search(raw)
                if m:
                    names = {p.strip() for p in m.group(1).split(",")}
                    table[idx] = names
            self._suppressed = table
        names = self._suppressed.get(line)
        return bool(names) and (check in names or "all" in names)

    def in_dir(self, *prefixes: str) -> bool:
        return any(self.path.startswith(p.rstrip("/") + "/") for p in prefixes)


@dataclass
class Finding:
    check: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


# ---------------------------------------------------------------------------
# Check registry
# ---------------------------------------------------------------------------

CheckFn = Callable[[SourceFile], Iterable[Finding]]
CHECKS: "dict[str, tuple[str, CheckFn]]" = {}


def register_check(name: str, description: str) -> Callable[[CheckFn], CheckFn]:
    def wrap(fn: CheckFn) -> CheckFn:
        if name in CHECKS:
            raise ValueError(f"duplicate check {name}")
        CHECKS[name] = (description, fn)
        return fn

    return wrap


def _emit(sf: SourceFile, check: str, offset: int, message: str) -> Iterator[Finding]:
    line = sf.line_of(offset)
    if not sf.suppressed(check, line):
        yield Finding(check, sf.path, line, message)


# ---------------------------------------------------------------------------
# Checks
# ---------------------------------------------------------------------------


@register_check(
    "bare-assert",
    "assert() outside tests/ — use MAOPT_CHECK (always-on) or MAOPT_DCHECK (checked builds)",
)
def check_bare_assert(sf: SourceFile) -> Iterator[Finding]:
    if sf.in_dir("tests"):
        return
    for m in re.finditer(r"(?<![\w.])assert\s*\(", sf.masked):
        # static_assert is a compile-time contract and fine anywhere.
        if sf.masked[max(0, m.start() - 7) : m.start()].endswith("static_"):
            continue
        yield from _emit(
            sf, "bare-assert", m.start(),
            "bare assert() vanishes under NDEBUG; use MAOPT_CHECK or MAOPT_DCHECK "
            "(src/common/check.hpp)",
        )


NONDET_SCOPES = ["src/core", "src/eval", "src/spice", "src/nn",
                 "src/linalg", "src/gp", "src/circuits"]
NONDET_PATTERNS = [
    (re.compile(r"std\s*::\s*random_device"), "std::random_device"),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:nullptr|NULL|0)\s*\)"), "time(nullptr)"),
    (re.compile(r"(?:system_clock|steady_clock|high_resolution_clock)\s*::\s*now"),
     "std::chrono::*_clock::now"),
    (re.compile(r"(?<![\w:])clock_gettime\s*\("), "clock_gettime()"),
]


@register_check(
    "nondeterminism",
    "entropy/wall-clock sources in the deterministic core (src/core, eval, spice, nn, ...)",
)
def check_nondeterminism(sf: SourceFile) -> Iterator[Finding]:
    if not sf.in_dir(*NONDET_SCOPES):
        return
    for pattern, label in NONDET_PATTERNS:
        for m in pattern.finditer(sf.masked):
            yield from _emit(
                sf, "nondeterminism", m.start(),
                f"{label} in the deterministic core breaks the replayable (seed, x) "
                "schedule; derive decisions from common/rng.hpp streams (telemetry "
                "timing belongs in obs/ via maopt::Stopwatch)",
            )


HOT_FORBIDDEN = [
    (re.compile(r"(?<![\w:])new\b(?!\s*\()"), "operator new"),
    (re.compile(r"(?<![\w:])new\s*\("), "placement/operator new"),
    (re.compile(r"(?<![\w:])(?:malloc|calloc|realloc|aligned_alloc|strdup)\s*\("),
     "malloc-family call"),
    (re.compile(r"(?<![\w:])make_(?:unique|shared)\s*<"), "make_unique/make_shared"),
    (re.compile(r"\.\s*(?:push_back|emplace_back|emplace|resize|reserve|assign|insert|"
                r"shrink_to_fit)\s*\("), "growing-container call"),
]


def _hot_function_bodies(sf: SourceFile) -> Iterator[tuple[int, int, int]]:
    """Yields (marker_offset, body_start, body_end) per MAOPT_HOT definition.

    Convention: MAOPT_HOT sits immediately before the return type of the
    function *definition*; the body is the first balanced {...} after the
    signature's parameter list. Member initializer lists and default
    arguments are handled by brace/paren balancing on masked text.
    """
    for m in re.finditer(r"\bMAOPT_HOT\b", sf.masked):
        i, n = m.end(), len(sf.masked)
        depth_paren = 0
        body_start = -1
        while i < n:
            c = sf.masked[i]
            if c == "(" or c == "[":
                depth_paren += 1
            elif c == ")" or c == "]":
                depth_paren -= 1
            elif c == "{" and depth_paren == 0:
                body_start = i
                break
            elif c == ";" and depth_paren == 0:
                break  # declaration only — nothing to scan
            i += 1
        if body_start < 0:
            continue
        depth = 0
        j = body_start
        while j < n:
            if sf.masked[j] == "{":
                depth += 1
            elif sf.masked[j] == "}":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        yield m.start(), body_start, j


@register_check(
    "hot-alloc",
    "heap allocation inside MAOPT_HOT functions (Newton loop, Adam step, GEMM/LU kernels)",
)
def check_hot_alloc(sf: SourceFile) -> Iterator[Finding]:
    for _marker, body_start, body_end in _hot_function_bodies(sf):
        body = sf.masked[body_start:body_end]
        for pattern, label in HOT_FORBIDDEN:
            for m in pattern.finditer(body):
                yield from _emit(
                    sf, "hot-alloc", body_start + m.start(),
                    f"{label} inside a MAOPT_HOT function; hot loops are "
                    "allocation-free — size workspaces in the caller or annotate a "
                    "cold-start line with `// maopt-lint: allow(hot-alloc)`",
                )


RAW_MUTEX_PATTERNS = [
    (re.compile(r"std\s*::\s*(?:recursive_|shared_|timed_)?mutex\b"), "std::mutex"),
    (re.compile(r"std\s*::\s*lock_guard\b"), "std::lock_guard"),
    (re.compile(r"std\s*::\s*unique_lock\b"), "std::unique_lock"),
    (re.compile(r"std\s*::\s*scoped_lock\b"), "std::scoped_lock"),
    (re.compile(r"std\s*::\s*condition_variable(?:_any)?\b"), "std::condition_variable"),
]
RAW_MUTEX_EXEMPT = "src/common/thread_annotations.hpp"


@register_check(
    "raw-mutex",
    "raw std:: locking in src/ — use the annotated maopt::Mutex/MutexLock/CondVar",
)
def check_raw_mutex(sf: SourceFile) -> Iterator[Finding]:
    if not sf.in_dir("src") or sf.path == RAW_MUTEX_EXEMPT:
        return
    for pattern, label in RAW_MUTEX_PATTERNS:
        for m in pattern.finditer(sf.masked):
            yield from _emit(
                sf, "raw-mutex", m.start(),
                f"{label} carries no capability annotations, so -Wthread-safety "
                "cannot see the acquisition; use maopt::Mutex / MutexLock / CondVar "
                "(src/common/thread_annotations.hpp)",
            )


NUMBER_PARSE_RE = re.compile(
    r"(?<![\w])(?:std\s*::\s*)?(stod|stof|stold|strtod|strtof|strtold|atof|sscanf)\s*\(")
# The two blessed parsing sites: the SPICE value parser itself and the deck
# frontend built on top of it (expression lexer included).
NUMBER_PARSE_EXEMPT_DIRS = ("src/deck",)
NUMBER_PARSE_EXEMPT_FILES = {"src/spice/parser.cpp"}


@register_check(
    "number-parse",
    "hand-rolled string->double parsing outside src/deck//src/spice/parser.cpp — "
    "use spice::parse_spice_value so engineering suffixes parse consistently",
)
def check_number_parse(sf: SourceFile) -> Iterator[Finding]:
    if not sf.in_dir("src", "examples", "bench"):
        return
    if sf.in_dir(*NUMBER_PARSE_EXEMPT_DIRS) or sf.path in NUMBER_PARSE_EXEMPT_FILES:
        return
    for m in NUMBER_PARSE_RE.finditer(sf.masked):
        yield from _emit(
            sf, "number-parse", m.start(),
            f"{m.group(1)}() silently mis-parses SPICE values ('2meg' -> 2e-3, "
            "'100f' -> 100); route user-facing numbers through "
            "spice::parse_spice_value, or justify a raw C-locale double with "
            "`// maopt-lint: allow(number-parse)`",
        )


BRACKET_OWNER = "src/core/optimizer.cpp"
RUN_STARTED_RE = re.compile(r"\bRunStarted\b")
RUN_FINISHED_RE = re.compile(r"\bRunFinished\b")
RAW_SPAN_ADD_RE = re.compile(r"\.\s*add\s*\(\s*(?:obs\s*::\s*)?Phase\s*::")


@register_check(
    "observer-bracketing",
    "RunStarted/RunFinished emitted only (and pairwise) by the Optimizer template method; "
    "spans recorded via RAII ScopedSpan",
)
def check_observer_bracketing(sf: SourceFile) -> Iterator[Finding]:
    if not sf.in_dir("src") or not sf.path.endswith(".cpp"):
        return
    # src/obs implements the observer interfaces; event type names appear
    # there as handlers, not emissions.
    if not sf.in_dir("src/obs"):
        started = list(RUN_STARTED_RE.finditer(sf.masked))
        finished = list(RUN_FINISHED_RE.finditer(sf.masked))
        if sf.path != BRACKET_OWNER:
            for m in started + finished:
                yield from _emit(
                    sf, "observer-bracketing", m.start(),
                    "run bracket events are emitted only by the Optimizer template "
                    "method (core/optimizer.cpp run()); do_run implementations emit "
                    "interior events only — a second bracket corrupts the stream",
                )
        else:
            if bool(started) != bool(finished):
                missing = "RunFinished" if started else "RunStarted"
                anchor = (started or finished)[0]
                yield from _emit(
                    sf, "observer-bracketing", anchor.start(),
                    f"unbalanced run bracketing: {missing} is never emitted, so every "
                    "stream this build writes fails check_telemetry.py bracketing",
                )
    # RAII span discipline applies everywhere in src/, including obs/ users.
    for m in RAW_SPAN_ADD_RE.finditer(sf.masked):
        yield from _emit(
            sf, "observer-bracketing", m.start(),
            "raw SpanCollector::add(Phase::...) call; use obs::ScopedSpan so the "
            "span closes on every path (including exceptions)",
        )


# ---------------------------------------------------------------------------
# Frontends
# ---------------------------------------------------------------------------


def load_libclang() -> Optional[object]:
    try:
        import clang.cindex as cindex  # type: ignore

        cindex.Index.create()
        return cindex
    except Exception:
        return None


def libclang_hot_bodies(cindex, abs_path: str, args: Sequence[str], sf: SourceFile):
    """AST-accurate MAOPT_HOT extents: returns the lexical generator's shape
    from clang cursors, replacing brace-balancing with real function extents."""
    index = cindex.Index.create()
    tu = index.parse(abs_path, args=list(args),
                     options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
    hot_lines = {sf.line_of(m.start()) for m in re.finditer(r"\bMAOPT_HOT\b", sf.masked)}
    spans = []
    kinds = (cindex.CursorKind.FUNCTION_DECL, cindex.CursorKind.CXX_METHOD,
             cindex.CursorKind.FUNCTION_TEMPLATE)
    for cur in tu.cursor.walk_preorder():
        if cur.kind in kinds and cur.is_definition() and cur.location.file and \
                os.path.samefile(cur.location.file.name, abs_path):
            if cur.extent.start.line in hot_lines or (cur.extent.start.line - 1) in hot_lines:
                spans.append((cur.extent.start.offset, cur.extent.start.offset,
                              cur.extent.end.offset))
    return spans


def parse_compile_commands(path: str) -> "dict[str, list[str]]":
    with open(path, "r", encoding="utf-8") as f:
        entries = json.load(f)
    args_by_file: dict[str, list[str]] = {}
    for e in entries:
        src = os.path.normpath(os.path.join(e.get("directory", "."), e["file"]))
        raw = e.get("arguments") or e.get("command", "").split()
        keep: list[str] = []
        it = iter(raw[1:])
        for a in it:
            if a in ("-c", "-o"):
                next(it, None)
            elif a.startswith(("-I", "-D", "-std", "-f", "-W", "-isystem")):
                keep.append(a)
        args_by_file[src] = keep
    return args_by_file


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


def collect_files(roots: Sequence[str]) -> List[str]:
    files: List[str] = []
    for root in roots:
        abs_root = os.path.join(REPO_ROOT, root)
        if os.path.isfile(abs_root):
            files.append(abs_root)
            continue
        for dirpath, dirnames, filenames in os.walk(abs_root):
            rel = os.path.relpath(dirpath, REPO_ROOT).replace(os.sep, "/")
            # The fixture corpus intentionally violates every check.
            if rel.startswith(FIXTURE_DIR.replace(os.sep, "/")):
                dirnames[:] = []
                continue
            dirnames[:] = [d for d in sorted(dirnames) if not d.startswith(".")]
            for fn in sorted(filenames):
                if os.path.splitext(fn)[1] in CXX_EXTENSIONS:
                    files.append(os.path.join(dirpath, fn))
    return files


def run_checks(files: Sequence[str], checks: Sequence[str],
               frontend: str, cc_args: "dict[str, list[str]]") -> List[Finding]:
    cindex = load_libclang() if frontend in ("auto", "libclang") else None
    if frontend == "libclang" and cindex is None:
        print("maopt_lint: ERROR — --frontend libclang requested but clang.cindex is "
              "not importable", file=sys.stderr)
        sys.exit(2)
    if frontend == "auto" and cindex is None:
        notice = ("maopt_lint: libclang unavailable; using the built-in lexical "
                  "frontend (checks are frontend-independent)")
        print(notice, file=sys.stderr)
        if os.environ.get("GITHUB_ACTIONS"):
            print(f"::warning::{notice}")

    findings: List[Finding] = []
    for abs_path in files:
        rel = os.path.relpath(abs_path, REPO_ROOT)
        sf = SourceFile.load(abs_path, rel)
        if cindex is not None:
            try:
                spans = libclang_hot_bodies(cindex, abs_path, cc_args.get(abs_path, []), sf)
                sf.libclang_hot_spans = spans  # type: ignore[attr-defined]
            except Exception:
                pass  # AST refinement is best-effort; lexical logic still runs
        for name in checks:
            _desc, fn = CHECKS[name]
            findings.extend(fn(sf))
    findings.sort(key=lambda f: (f.path, f.line, f.check))
    return findings


def self_test(frontend: str) -> int:
    """Every check must flag its bad fixture and pass its good fixture."""
    fixture_root = os.path.join(REPO_ROOT, FIXTURE_DIR)
    failures: List[str] = []
    for name in sorted(CHECKS):
        stem = name.replace("-", "_")
        for flavor, want_findings in (("bad", True), ("good", False)):
            path = os.path.join(fixture_root, f"{stem}_{flavor}.cpp")
            if not os.path.isfile(path):
                failures.append(f"{name}: missing fixture {os.path.relpath(path, REPO_ROOT)}")
                continue
            # Fixtures emulate tree paths via their first line:
            #   // maopt-lint-fixture-path: src/whatever.cpp
            with open(path, "r", encoding="utf-8") as f:
                first = f.readline()
            m = re.match(r"//\s*maopt-lint-fixture-path:\s*(\S+)", first)
            rel = m.group(1) if m else os.path.relpath(path, REPO_ROOT)
            sf = SourceFile.load(path, rel)
            got = [f for f in CHECKS[name][1](sf)]
            if want_findings and not got:
                failures.append(f"{name}: {stem}_{flavor}.cpp produced no findings")
            elif not want_findings and got:
                failures.append(
                    f"{name}: {stem}_{flavor}.cpp should be clean but got: "
                    + "; ".join(f.render() for f in got))
    if failures:
        print("maopt_lint --self-test: FAILED")
        for f in failures:
            print("  " + f)
        return 1
    print(f"maopt_lint --self-test: OK — {len(CHECKS)} checks x good/bad fixtures")
    return 0


def main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(prog="maopt_lint.py",
                                     description="repo-invariant linter (see module docstring)")
    parser.add_argument("roots", nargs="*", default=None,
                        help=f"files or directories to lint (default: {' '.join(DEFAULT_ROOTS)})")
    parser.add_argument("--compile-commands", metavar="JSON",
                        help="compile_commands.json; restricts the file set to compiled TUs "
                             "(+ headers under the roots) and feeds libclang parse args")
    parser.add_argument("--frontend", choices=("auto", "lexical", "libclang"), default="auto")
    parser.add_argument("--checks", metavar="a,b", help="comma list (default: all)")
    parser.add_argument("--list-checks", action="store_true")
    parser.add_argument("--self-test", action="store_true",
                        help="validate every check against tests/lint/fixtures")
    args = parser.parse_args(argv)

    if args.list_checks:
        width = max(len(n) for n in CHECKS)
        for name in sorted(CHECKS):
            print(f"{name:<{width}}  {CHECKS[name][0]}")
        return 0

    if args.self_test:
        return self_test(args.frontend)

    checks = sorted(CHECKS)
    if args.checks:
        checks = [c.strip() for c in args.checks.split(",") if c.strip()]
        unknown = [c for c in checks if c not in CHECKS]
        if unknown:
            print(f"maopt_lint: unknown check(s): {', '.join(unknown)} "
                  f"(--list-checks shows the registry)", file=sys.stderr)
            return 2

    cc_args: dict[str, list[str]] = {}
    if args.compile_commands:
        cc_args = parse_compile_commands(args.compile_commands)

    files = collect_files(args.roots or DEFAULT_ROOTS)
    if args.compile_commands:
        compiled = set(cc_args)
        files = [f for f in files if f in compiled or os.path.splitext(f)[1] in
                 (".hpp", ".hh", ".h")]
    if not files:
        print("maopt_lint: no input files", file=sys.stderr)
        return 2

    findings = run_checks(files, checks, args.frontend, cc_args)
    for f in findings:
        print(f.render())
    summary = (f"maopt_lint: {len(findings)} finding(s) over {len(files)} files, "
               f"{len(checks)} checks")
    print(summary if not findings else summary + " — FAILED", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
