#!/usr/bin/env python3
"""Validate a MA-Opt telemetry JSONL stream (see README "Observability").

Checks, per run bracket (run_started .. run_finished):
  * every line is a standalone JSON object with an "event" and a "t" key;
  * event kinds are from the documented set;
  * simulation_completed count equals the run_finished "simulations" field
    and the counters agree with the events observed;
  * iteration numbers are strictly increasing;
  * span phases are from the documented set and non-negative.

Usage: tools/check_telemetry.py run.jsonl [--expect-runs N]
Exit code 0 = valid, 1 = violations found (printed to stderr).
"""

import argparse
import json
import sys

EVENT_KINDS = {
    "run_started",
    "simulation_completed",
    "iteration_completed",
    "checkpoint_written",
    "run_finished",
}
PHASES = {"critic-train", "actor-train", "simulate", "near-sample", "elite-update"}

REQUIRED_KEYS = {
    "run_started": {"algorithm", "problem", "seed", "budget", "num_initial", "dim", "t"},
    "simulation_completed": {
        "index", "iteration", "lane", "ok", "feasible", "fom", "seconds",
        "retries", "failure_kind", "cache_hit", "coalesced", "t",
    },
    "iteration_completed": {
        "iteration", "simulations", "best_fom", "feasible_found", "near_sampling",
        "wall_seconds", "spans", "t",
    },
    "checkpoint_written": {"path", "iteration", "simulations", "bytes", "t"},
    "run_finished": {
        "algorithm", "simulations", "best_fom", "feasible", "aborted",
        "abort_reason", "wall_seconds", "counters", "t",
    },
}


class Checker:
    def __init__(self):
        self.errors = []
        self.runs = 0
        self.in_run = False
        self.sims = 0
        self.iterations = 0
        self.last_iteration = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_coalesced = 0
        self.total_cache_hits = 0  # across all runs, for --min-cache-hits

    def error(self, lineno, msg):
        self.errors.append(f"line {lineno}: {msg}")

    def check_line(self, lineno, line):
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            self.error(lineno, f"not valid JSON: {exc}")
            return
        if not isinstance(event, dict):
            self.error(lineno, "line is not a JSON object")
            return
        kind = event.get("event")
        if kind not in EVENT_KINDS:
            self.error(lineno, f"unknown event kind {kind!r}")
            return
        missing = REQUIRED_KEYS[kind] - event.keys()
        if missing:
            self.error(lineno, f"{kind} missing keys {sorted(missing)}")
        getattr(self, "on_" + kind)(lineno, event)

    def on_run_started(self, lineno, event):
        if self.in_run:
            self.error(lineno, "run_started before previous run_finished")
        self.in_run = True
        self.sims = 0
        self.iterations = 0
        self.last_iteration = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_coalesced = 0

    def on_simulation_completed(self, lineno, event):
        if not self.in_run:
            self.error(lineno, "simulation_completed outside a run bracket")
        self.sims += 1
        if event.get("seconds", 0) < 0:
            self.error(lineno, "negative simulation seconds")
        if event.get("cache_hit"):
            self.cache_hits += 1
            self.total_cache_hits += 1
        if event.get("coalesced"):
            self.cache_coalesced += 1
        if event.get("cache_hit") and event.get("coalesced"):
            self.error(lineno, "simulation both cache_hit and coalesced")

    def on_iteration_completed(self, lineno, event):
        if not self.in_run:
            self.error(lineno, "iteration_completed outside a run bracket")
        self.iterations += 1
        iteration = event.get("iteration", 0)
        if iteration <= self.last_iteration:
            self.error(lineno, f"iteration {iteration} not increasing")
        self.last_iteration = iteration
        for span in event.get("spans", []):
            if span.get("phase") not in PHASES:
                self.error(lineno, f"unknown span phase {span.get('phase')!r}")
            if span.get("seconds", 0) < 0:
                self.error(lineno, "negative span seconds")

    def on_checkpoint_written(self, lineno, event):
        if not self.in_run:
            self.error(lineno, "checkpoint_written outside a run bracket")

    def on_run_finished(self, lineno, event):
        if not self.in_run:
            self.error(lineno, "run_finished without run_started")
        self.in_run = False
        self.runs += 1
        if event.get("simulations") != self.sims:
            self.error(
                lineno,
                f"run_finished says {event.get('simulations')} simulations, "
                f"stream has {self.sims} simulation_completed events",
            )
        counters = event.get("counters", {})
        if counters.get("simulations") != self.sims:
            self.error(lineno, "counters.simulations disagrees with the event stream")
        if counters.get("iterations") != self.iterations:
            self.error(lineno, "counters.iterations disagrees with the event stream")
        # Evaluation-service cache invariants. All-zero counters mean the run
        # was not routed through an EvalService; otherwise every budgeted
        # simulation is exactly one of hit / miss, and only misses coalesce.
        hits = counters.get("cache_hits", 0)
        misses = counters.get("cache_misses", 0)
        coalesced = counters.get("cache_coalesced", 0)
        if hits != self.cache_hits:
            self.error(lineno, "counters.cache_hits disagrees with the event stream")
        if coalesced != self.cache_coalesced:
            self.error(lineno, "counters.cache_coalesced disagrees with the event stream")
        if hits + misses not in (0, self.sims):
            self.error(
                lineno,
                f"cache_hits + cache_misses ({hits} + {misses}) must equal "
                f"simulations ({self.sims}) or be zero",
            )
        if coalesced > misses:
            self.error(lineno, f"cache_coalesced ({coalesced}) exceeds cache_misses ({misses})")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("jsonl", help="telemetry stream to validate")
    parser.add_argument("--expect-runs", type=int, default=None,
                        help="require exactly N run brackets")
    parser.add_argument("--min-cache-hits", type=int, default=None,
                        help="require at least N cache-hit simulations across all runs")
    args = parser.parse_args()

    checker = Checker()
    with open(args.jsonl, encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if line:
                checker.check_line(lineno, line)
    if checker.in_run:
        checker.error("EOF", "stream ends inside a run bracket (no run_finished)")
    if args.expect_runs is not None and checker.runs != args.expect_runs:
        checker.error("EOF", f"expected {args.expect_runs} runs, found {checker.runs}")
    if args.min_cache_hits is not None and checker.total_cache_hits < args.min_cache_hits:
        checker.error(
            "EOF",
            f"expected >= {args.min_cache_hits} cache hits, found {checker.total_cache_hits}",
        )

    if checker.errors:
        for err in checker.errors:
            print(err, file=sys.stderr)
        print(f"FAIL: {len(checker.errors)} violation(s) in {args.jsonl}", file=sys.stderr)
        return 1
    print(f"OK: {checker.runs} run(s) valid in {args.jsonl}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
