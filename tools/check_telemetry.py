#!/usr/bin/env python3
"""Validate a MA-Opt telemetry JSONL stream (see README "Observability").

Checks, per run bracket (run_started .. run_finished):
  * every line is a standalone JSON object with an "event" and a "t" key;
  * event kinds are from the documented set;
  * simulation_completed count equals the run_finished "simulations" field
    and the counters agree with the events observed;
  * iteration numbers are strictly increasing;
  * span phases are from the documented set and non-negative.

Checks, per sweep bracket (sweep_started .. sweep_completed, emitted by
corner / Monte Carlo sweep problems — see "Robust & yield workloads"):
  * brackets never interleave: at most one sweep is open at a time, and
    every sweep_variant / sweep_completed carries the open sweep_id;
  * a bracket holds exactly the declared number of sweep_variant events;
  * sweep_completed tallies are consistent: ok + failed + skipped equals
    the declared variant count and matches the per-variant events;
  * a variant is never both ok and skipped, and a degraded sweep has both
    lost variants and survivors (whole-sweep failures report their losses
    with degraded = false).
Non-sweep events may appear inside a sweep bracket (evaluating threads
emit concurrently with the optimizer), but sweep events may not.

Checks, per job (job_submitted .. job_finished, emitted by serve::OptDaemon):
  * jobs MAY interleave freely in one stream (unlike run brackets — the
    daemon multiplexes many jobs); events are correlated by job_id;
  * every job_state_changed chains (its "from" equals the job's previous
    "to"), starting from "pending" at job_submitted;
  * job_finished carries a terminal state (done / failed / killed) matching
    the job's last transition, and arrives at most once per job;
  * at EOF no job is left in an active state (pending / running / pausing /
    killing) — paused and terminal are the only valid resting states.

Usage: tools/check_telemetry.py run.jsonl [--expect-runs N] [--min-sweeps N]
                                          [--min-jobs N]
Exit code 0 = valid, 1 = violations found (printed to stderr).
"""

import argparse
import json
import sys

EVENT_KINDS = {
    "run_started",
    "simulation_completed",
    "iteration_completed",
    "checkpoint_written",
    "run_finished",
    "sweep_started",
    "sweep_variant",
    "sweep_completed",
    "job_submitted",
    "job_state_changed",
    "job_finished",
}
JOB_STATES = {"pending", "running", "pausing", "paused", "killing", "done", "failed", "killed"}
JOB_ACTIVE_STATES = {"pending", "running", "pausing", "killing"}
JOB_TERMINAL_STATES = {"done", "failed", "killed"}
PHASES = {"critic-train", "actor-train", "simulate", "near-sample", "elite-update"}
SWEEP_KINDS = {"corners", "monte-carlo"}
AGGREGATIONS = {"worst-case", "k-sigma", "yield-quantile"}
POLICIES = {"fail-fast", "penalize-failed", "conservative-bound"}

REQUIRED_KEYS = {
    "run_started": {"algorithm", "problem", "seed", "budget", "num_initial", "dim", "t"},
    "simulation_completed": {
        "index", "iteration", "lane", "ok", "feasible", "fom", "seconds",
        "retries", "failure_kind", "cache_hit", "coalesced", "t",
    },
    "iteration_completed": {
        "iteration", "simulations", "best_fom", "feasible_found", "near_sampling",
        "wall_seconds", "spans", "t",
    },
    "checkpoint_written": {"path", "iteration", "simulations", "bytes", "t"},
    "run_finished": {
        "algorithm", "simulations", "best_fom", "feasible", "aborted",
        "abort_reason", "wall_seconds", "counters", "t",
    },
    "sweep_started": {"sweep_id", "kind", "aggregation", "variants", "t"},
    "sweep_variant": {"sweep_id", "variant", "label", "ok", "skipped", "fom0", "seconds", "t"},
    "sweep_completed": {"sweep_id", "ok", "failed", "skipped", "degraded", "policy", "seconds", "t"},
    "job_submitted": {
        "job_id", "name", "tenant", "problem", "algorithm", "seed", "simulation_budget", "t",
    },
    "job_state_changed": {"job_id", "name", "from", "to", "reason", "t"},
    "job_finished": {
        "job_id", "name", "tenant", "state", "simulations", "best_fom", "feasible",
        "wall_seconds", "counters", "t",
    },
}


class Checker:
    def __init__(self):
        self.errors = []
        self.runs = 0
        self.in_run = False
        self.sims = 0
        self.iterations = 0
        self.last_iteration = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_coalesced = 0
        self.total_cache_hits = 0  # across all runs, for --min-cache-hits
        # Open sweep bracket state (None when no sweep is open).
        self.sweep = None
        self.sweeps = 0  # completed brackets, for --min-sweeps
        # Per-job state: job_id -> {"state": str, "finished": bool}.
        self.jobs = {}
        self.jobs_finished = 0  # job_finished events, for --min-jobs

    def error(self, lineno, msg):
        self.errors.append(f"line {lineno}: {msg}")

    def check_line(self, lineno, line):
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            self.error(lineno, f"not valid JSON: {exc}")
            return
        if not isinstance(event, dict):
            self.error(lineno, "line is not a JSON object")
            return
        kind = event.get("event")
        if kind not in EVENT_KINDS:
            self.error(lineno, f"unknown event kind {kind!r}")
            return
        missing = REQUIRED_KEYS[kind] - event.keys()
        if missing:
            self.error(lineno, f"{kind} missing keys {sorted(missing)}")
        getattr(self, "on_" + kind)(lineno, event)

    def on_run_started(self, lineno, event):
        if self.in_run:
            self.error(lineno, "run_started before previous run_finished")
        self.in_run = True
        self.sims = 0
        self.iterations = 0
        self.last_iteration = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_coalesced = 0

    def on_simulation_completed(self, lineno, event):
        if not self.in_run:
            self.error(lineno, "simulation_completed outside a run bracket")
        self.sims += 1
        if event.get("seconds", 0) < 0:
            self.error(lineno, "negative simulation seconds")
        if event.get("cache_hit"):
            self.cache_hits += 1
            self.total_cache_hits += 1
        if event.get("coalesced"):
            self.cache_coalesced += 1
        if event.get("cache_hit") and event.get("coalesced"):
            self.error(lineno, "simulation both cache_hit and coalesced")

    def on_iteration_completed(self, lineno, event):
        if not self.in_run:
            self.error(lineno, "iteration_completed outside a run bracket")
        self.iterations += 1
        iteration = event.get("iteration", 0)
        if iteration <= self.last_iteration:
            self.error(lineno, f"iteration {iteration} not increasing")
        self.last_iteration = iteration
        for span in event.get("spans", []):
            if span.get("phase") not in PHASES:
                self.error(lineno, f"unknown span phase {span.get('phase')!r}")
            if span.get("seconds", 0) < 0:
                self.error(lineno, "negative span seconds")

    def on_checkpoint_written(self, lineno, event):
        if not self.in_run:
            self.error(lineno, "checkpoint_written outside a run bracket")

    def on_sweep_started(self, lineno, event):
        if self.sweep is not None:
            self.error(lineno, "sweep_started while a sweep bracket is still open "
                               f"(sweep_id {self.sweep['id']})")
        if event.get("kind") not in SWEEP_KINDS:
            self.error(lineno, f"unknown sweep kind {event.get('kind')!r}")
        if event.get("aggregation") not in AGGREGATIONS:
            self.error(lineno, f"unknown sweep aggregation {event.get('aggregation')!r}")
        variants = event.get("variants", 0)
        if not isinstance(variants, int) or variants < 1:
            self.error(lineno, f"sweep_started declares {variants!r} variants")
            variants = 0
        self.sweep = {
            "id": event.get("sweep_id"),
            "variants": variants,
            "ok": 0,
            "failed": 0,
            "skipped": 0,
        }

    def on_sweep_variant(self, lineno, event):
        if self.sweep is None:
            self.error(lineno, "sweep_variant outside a sweep bracket")
            return
        if event.get("sweep_id") != self.sweep["id"]:
            self.error(lineno, f"sweep_variant sweep_id {event.get('sweep_id')} does not "
                               f"match the open bracket ({self.sweep['id']})")
        if event.get("seconds", 0) < 0:
            self.error(lineno, "negative sweep variant seconds")
        if event.get("ok") and event.get("skipped"):
            self.error(lineno, "sweep variant both ok and skipped")
        if event.get("skipped"):
            self.sweep["skipped"] += 1
        elif event.get("ok"):
            self.sweep["ok"] += 1
        else:
            self.sweep["failed"] += 1
        total = self.sweep["ok"] + self.sweep["failed"] + self.sweep["skipped"]
        if total > self.sweep["variants"]:
            self.error(lineno, f"more sweep_variant events than the declared "
                               f"{self.sweep['variants']} variants")

    def on_sweep_completed(self, lineno, event):
        if self.sweep is None:
            self.error(lineno, "sweep_completed without sweep_started")
            return
        sweep, self.sweep = self.sweep, None
        self.sweeps += 1
        if event.get("sweep_id") != sweep["id"]:
            self.error(lineno, f"sweep_completed sweep_id {event.get('sweep_id')} does not "
                               f"match the open bracket ({sweep['id']})")
        if event.get("policy") not in POLICIES:
            self.error(lineno, f"unknown sweep policy {event.get('policy')!r}")
        if event.get("seconds", 0) < 0:
            self.error(lineno, "negative sweep seconds")
        ok = event.get("ok", 0)
        failed = event.get("failed", 0)
        skipped = event.get("skipped", 0)
        for name, expected, got in (
            ("ok", sweep["ok"], ok),
            ("failed", sweep["failed"], failed),
            ("skipped", sweep["skipped"], skipped),
        ):
            if expected != got:
                self.error(lineno, f"sweep_completed {name}={got} but the bracket has "
                                   f"{expected} such sweep_variant events")
        if ok + failed + skipped != sweep["variants"]:
            self.error(lineno, f"sweep tallies ({ok} + {failed} + {skipped}) do not cover "
                               f"the declared {sweep['variants']} variants")
        # degraded marks a *partial* loss that was absorbed into the
        # aggregate: it requires lost variants AND survivors. Whole-sweep
        # failures (fail-fast, every variant down, below min_ok_fraction)
        # report their losses with degraded = false.
        if event.get("degraded"):
            if failed + skipped == 0:
                self.error(lineno, "sweep marked degraded but no variant failed or was skipped")
            if ok == 0:
                self.error(lineno, "sweep marked degraded but no variant succeeded "
                                   "(should be a whole-sweep failure)")

    def on_job_submitted(self, lineno, event):
        job_id = event.get("job_id")
        if job_id in self.jobs:
            self.error(lineno, f"duplicate job_submitted for job_id {job_id}")
            return
        self.jobs[job_id] = {"state": "pending", "finished": False, "name": event.get("name")}

    def on_job_state_changed(self, lineno, event):
        job_id = event.get("job_id")
        job = self.jobs.get(job_id)
        if job is None:
            self.error(lineno, f"job_state_changed for unsubmitted job_id {job_id}")
            return
        if job["finished"]:
            self.error(lineno, f"job_state_changed after job_finished (job_id {job_id})")
        src, dst = event.get("from"), event.get("to")
        if src not in JOB_STATES:
            self.error(lineno, f"unknown job state {src!r}")
        if dst not in JOB_STATES:
            self.error(lineno, f"unknown job state {dst!r}")
        if src != job["state"]:
            self.error(lineno, f"job {job_id} transition from {src!r} but its previous "
                               f"state is {job['state']!r}")
        job["state"] = dst

    def on_job_finished(self, lineno, event):
        job_id = event.get("job_id")
        job = self.jobs.get(job_id)
        if job is None:
            self.error(lineno, f"job_finished for unsubmitted job_id {job_id}")
            return
        if job["finished"]:
            self.error(lineno, f"second job_finished for job_id {job_id}")
            return
        job["finished"] = True
        self.jobs_finished += 1
        state = event.get("state")
        if state not in JOB_TERMINAL_STATES:
            self.error(lineno, f"job_finished with non-terminal state {state!r}")
        if state != job["state"]:
            self.error(lineno, f"job_finished state {state!r} does not match the job's "
                               f"last transition ({job['state']!r})")
        counters = event.get("counters", {})
        hits = counters.get("cache_hits", 0)
        misses = counters.get("cache_misses", 0)
        coalesced = counters.get("cache_coalesced", 0)
        if coalesced > misses:
            self.error(lineno, f"job cache_coalesced ({coalesced}) exceeds cache_misses "
                               f"({misses})")
        if hits + misses not in (0, event.get("simulations")):
            self.error(lineno, f"job cache_hits + cache_misses ({hits} + {misses}) must "
                               f"equal simulations ({event.get('simulations')}) or be zero")

    def on_run_finished(self, lineno, event):
        if not self.in_run:
            self.error(lineno, "run_finished without run_started")
        self.in_run = False
        self.runs += 1
        if event.get("simulations") != self.sims:
            self.error(
                lineno,
                f"run_finished says {event.get('simulations')} simulations, "
                f"stream has {self.sims} simulation_completed events",
            )
        counters = event.get("counters", {})
        if counters.get("simulations") != self.sims:
            self.error(lineno, "counters.simulations disagrees with the event stream")
        if counters.get("iterations") != self.iterations:
            self.error(lineno, "counters.iterations disagrees with the event stream")
        # Evaluation-service cache invariants. All-zero counters mean the run
        # was not routed through an EvalService; otherwise every budgeted
        # simulation is exactly one of hit / miss, and only misses coalesce.
        hits = counters.get("cache_hits", 0)
        misses = counters.get("cache_misses", 0)
        coalesced = counters.get("cache_coalesced", 0)
        if hits != self.cache_hits:
            self.error(lineno, "counters.cache_hits disagrees with the event stream")
        if coalesced != self.cache_coalesced:
            self.error(lineno, "counters.cache_coalesced disagrees with the event stream")
        if hits + misses not in (0, self.sims):
            self.error(
                lineno,
                f"cache_hits + cache_misses ({hits} + {misses}) must equal "
                f"simulations ({self.sims}) or be zero",
            )
        if coalesced > misses:
            self.error(lineno, f"cache_coalesced ({coalesced}) exceeds cache_misses ({misses})")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("jsonl", help="telemetry stream to validate")
    parser.add_argument("--expect-runs", type=int, default=None,
                        help="require exactly N run brackets")
    parser.add_argument("--min-cache-hits", type=int, default=None,
                        help="require at least N cache-hit simulations across all runs")
    parser.add_argument("--min-sweeps", type=int, default=None,
                        help="require at least N complete sweep brackets")
    parser.add_argument("--min-jobs", type=int, default=None,
                        help="require at least N finished daemon jobs")
    args = parser.parse_args()

    checker = Checker()
    with open(args.jsonl, encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if line:
                checker.check_line(lineno, line)
    if checker.in_run:
        checker.error("EOF", "stream ends inside a run bracket (no run_finished)")
    if checker.sweep is not None:
        checker.error("EOF", "stream ends inside a sweep bracket (no sweep_completed)")
    for job_id, job in sorted(checker.jobs.items(), key=str):
        if job["state"] in JOB_ACTIVE_STATES:
            checker.error("EOF", f"job {job_id} ({job['name']}) left in active state "
                                 f"{job['state']!r}")
    if args.min_jobs is not None and checker.jobs_finished < args.min_jobs:
        checker.error("EOF", f"expected >= {args.min_jobs} finished jobs, "
                             f"found {checker.jobs_finished}")
    if args.expect_runs is not None and checker.runs != args.expect_runs:
        checker.error("EOF", f"expected {args.expect_runs} runs, found {checker.runs}")
    if args.min_sweeps is not None and checker.sweeps < args.min_sweeps:
        checker.error("EOF", f"expected >= {args.min_sweeps} sweep brackets, found {checker.sweeps}")
    if args.min_cache_hits is not None and checker.total_cache_hits < args.min_cache_hits:
        checker.error(
            "EOF",
            f"expected >= {args.min_cache_hits} cache hits, found {checker.total_cache_hits}",
        )

    if checker.errors:
        for err in checker.errors:
            print(err, file=sys.stderr)
        print(f"FAIL: {len(checker.errors)} violation(s) in {args.jsonl}", file=sys.stderr)
        return 1
    print(f"OK: {checker.runs} run(s), {checker.sweeps} sweep(s), "
          f"{checker.jobs_finished} finished job(s) valid in {args.jsonl}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
