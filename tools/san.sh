#!/usr/bin/env bash
# One-command sanitizer run: configure, build, and ctest under a sanitizer.
#
# Usage:
#   tools/san.sh address             # ASan
#   tools/san.sh undefined           # UBSan
#   tools/san.sh thread              # TSan
#   tools/san.sh address,undefined   # combined ASan+UBSan (the CI pairing)
#
# A bare word after the sanitizer becomes a ctest -R test filter, and any
# flag-style args are forwarded to ctest verbatim, e.g.
#   tools/san.sh thread ThreadPool        # only tests matching ThreadPool
#   tools/san.sh thread -R ThreadPool -V  # same, spelled out
# Builds land in build-san-<name>/ so the flavors don't clobber each other
# or the main build/.
set -euo pipefail

san="${1:?usage: tools/san.sh address|undefined|thread|address,undefined [test-filter] [ctest args...]}"
shift || true
if [[ "${1:-}" != "" && "${1:0:1}" != "-" ]]; then
  set -- -R "$1" "${@:2}"
fi

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-san-${san//,/-}"

cmake -B "${build_dir}" -S "${repo_root}" -DMAOPT_SAN="${san}" -DMAOPT_CHECKED=ON
cmake --build "${build_dir}" -j "$(nproc)"

# Halt-on-error so ctest reports the first finding instead of burying it;
# TSan's second_deadlock_stack improves lock-inversion reports.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_stack_use_after_return=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

ctest --test-dir "${build_dir}" --output-on-failure "$@"
